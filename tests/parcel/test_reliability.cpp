// Reliability layer (ack/retransmit/dedup) driven through a fault-
// injecting loopback: exactly-once in-order delivery under drops,
// duplicates and reordering, standalone acks, and the per-link circuit
// breaker.

#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace {

std::atomic<int> g_rel_sum{0};
std::mutex g_rel_order_lock;
std::vector<int> g_rel_order;

int rel_record(int x)
{
    g_rel_sum += x;
    {
        std::lock_guard lock(g_rel_order_lock);
        g_rel_order.push_back(x);
    }
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(rel_record, rel_record_action);

namespace {

using coal::net::blackout_window;
using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::reliability_params;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

reliability_params fast_reliability()
{
    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;
    return rel;
}

// Two-locality harness: loopback wrapped in the fault injector, with the
// ack/retransmit layer switched on.
struct lossy_harness
{
    explicit lossy_harness(
        fault_plan plan, reliability_params rel = fast_reliability())
      : inner(2)
      , faulty(inner, plan)
      , sched0(make_cfg())
      , sched1(make_cfg())
      , ph0(0, faulty, sched0, rel)
      , ph1(1, faulty, sched1, rel)
    {
        g_rel_sum = 0;
        {
            std::lock_guard lock(g_rel_order_lock);
            g_rel_order.clear();
        }
    }

    ~lossy_harness()
    {
        settle();
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config make_cfg()
    {
        scheduler_config cfg;
        cfg.num_workers = 1;
        cfg.idle_sleep_us = 50;
        return cfg;
    }

    [[nodiscard]] bool handlers_quiet()
    {
        return ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
            ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
            ph0.pending_reliability() == 0 && ph1.pending_reliability() == 0 &&
            sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0;
    }

    [[nodiscard]] bool quiet()
    {
        return handlers_quiet() && faulty.in_flight() == 0;
    }

    // Retransmission chains need real time (RTO backoff), so the settle
    // deadline is generous; a healthy run finishes in milliseconds.
    void settle()
    {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < 15000.0)
        {
            if (quiet())
            {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                if (quiet())
                    return;
            }
            // Handlers quiet but a frame is still inside the transport:
            // a reorder-parked message with no follow-up traffic on its
            // link never moves on its own — flush it (mirrors quiesce).
            if (handlers_quiet() && faulty.in_flight() != 0)
                faulty.drain();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "lossy harness did not settle";
    }

    loopback_transport inner;
    faulty_transport faulty;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
};

parcel make_request(std::uint32_t dst, int arg, std::uint64_t continuation = 0)
{
    parcel p;
    p.dest = dst;
    p.action = rel_record_action::id();
    p.continuation = continuation;
    p.arguments = rel_record_action::make_arguments(arg);
    return p;
}

TEST(Reliability, ExactlyOnceUnderDrops)
{
    fault_plan plan;
    plan.drop_probability = 0.2;
    lossy_harness h(plan);

    constexpr int n = 200;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, 1));
    h.settle();

    EXPECT_EQ(g_rel_sum.load(), n);
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(), static_cast<unsigned>(n));
    // A 20% drop rate over hundreds of frames must force retransmission.
    EXPECT_GT(h.ph0.counters().retransmits.load(), 0u);
    EXPECT_GT(h.faulty.stats().drops_injected, 0u);
}

TEST(Reliability, DuplicatedFramesAreSuppressed)
{
    fault_plan plan;
    plan.duplicate_probability = 1.0;
    lossy_harness h(plan);

    constexpr int n = 50;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, 1));
    h.settle();

    // Every data frame arrived twice; the second copy must be invisible.
    EXPECT_EQ(g_rel_sum.load(), n);
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(), static_cast<unsigned>(n));
    EXPECT_GT(h.ph1.counters().duplicates_suppressed.load(), 0u);
}

TEST(Reliability, ReorderedFramesAreDeliveredInOrder)
{
    fault_plan plan;
    plan.reorder_probability = 1.0;
    lossy_harness h(plan);

    constexpr int n = 60;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, i));
    h.settle();

    std::vector<int> expected(n);
    for (int i = 0; i != n; ++i)
        expected[i] = i;
    std::lock_guard lock(g_rel_order_lock);
    EXPECT_EQ(g_rel_order, expected);
}

TEST(Reliability, StandaloneAckDrainsUnackedWithoutRetransmit)
{
    // No reverse traffic to piggyback on, and an RTO far beyond the ack
    // delay: the receiver's standalone ack must drain the sender.
    reliability_params rel = fast_reliability();
    rel.ack_delay_us = 100;
    rel.min_rto_us = 100000;
    lossy_harness h(fault_plan{}, rel);

    h.ph0.put_parcel(make_request(1, 5));
    h.settle();

    EXPECT_EQ(g_rel_sum.load(), 5);
    EXPECT_EQ(h.ph0.pending_reliability(), 0u);
    EXPECT_GE(h.ph1.counters().acks_sent.load(), 1u);
    EXPECT_GE(h.ph0.counters().acked_messages.load(), 1u);
    EXPECT_GT(h.ph0.counters().ack_latency_ns.load(), 0u);
    EXPECT_EQ(h.ph0.counters().retransmits.load(), 0u);
}

TEST(Reliability, ResponsesRoundTripUnderLoss)
{
    fault_plan plan;
    plan.drop_probability = 0.15;
    lossy_harness h(plan);

    constexpr int n = 100;
    std::atomic<int> completed{0};
    for (int i = 0; i != n; ++i)
    {
        auto const id = h.ph0.register_response_callback(
            [&completed](coal::serialization::shared_buffer&&) { ++completed; });
        h.ph0.put_parcel(make_request(1, 1, id));
    }
    h.settle();

    EXPECT_EQ(completed.load(), n);
    EXPECT_EQ(h.ph0.pending_responses(), 0u);
    EXPECT_EQ(g_rel_sum.load(), n);
}

TEST(Reliability, CircuitBreakerTripsDuringBlackoutAndHeals)
{
    fault_plan plan;
    blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.start_us = 0;
    w.end_us = 80'000;    // 80 ms outage on the forward link
    plan.blackouts.push_back(w);
    auto rel = fast_reliability();
    rel.breaker_trip_backlog = 32;    // trip on backlog, not attempts
    lossy_harness h(plan, rel);

    constexpr int n = 40;    // backlog above breaker_trip_backlog
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, 1));

    // The breaker must open while the link is dark.
    coal::stopwatch trip_deadline;
    while (!h.ph0.link_degraded(1) && trip_deadline.elapsed_ms() < 5000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(h.ph0.link_degraded(1));
    EXPECT_GE(h.ph0.counters().circuit_breaker_trips.load(), 1u);

    // After the window passes, retransmission delivers everything and
    // the acks close the breaker again.
    h.settle();
    EXPECT_EQ(g_rel_sum.load(), n);
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(), static_cast<unsigned>(n));
    EXPECT_FALSE(h.ph0.link_degraded(1));
    EXPECT_GT(h.ph0.counters().retransmits.load(), 0u);
}

TEST(Reliability, DisabledLayerSendsUnsequencedFrames)
{
    // Reliability off: no acks, no retransmits, nothing pending.
    reliability_params rel;
    rel.enabled = false;
    lossy_harness h(fault_plan{}, rel);

    h.ph0.put_parcel(make_request(1, 3));
    h.settle();
    EXPECT_EQ(g_rel_sum.load(), 3);
    EXPECT_EQ(h.ph0.counters().retransmits.load(), 0u);
    EXPECT_EQ(h.ph1.counters().acks_sent.load(), 0u);
    EXPECT_EQ(h.ph0.pending_reliability(), 0u);
}

}    // namespace
