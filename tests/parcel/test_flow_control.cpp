// Credit-based flow control and overload protection: window deferral and
// release, credit advertisement under pool pressure, admission shedding,
// the credit-starvation slow-peer detector, and the link_down failure
// mode on a capped dark link.

#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace {

std::atomic<int> g_flow_sum{0};

int flow_record(int x)
{
    g_flow_sum += x;
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(flow_record, flow_record_action);

namespace {

using coal::pressure_state;
using coal::net::blackout_window;
using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::parcel::delivery_error;
using coal::parcel::flow_params;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::reliability_params;
using coal::serialization::buffer_pool;
using coal::serialization::shared_buffer;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

reliability_params fast_reliability()
{
    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;
    return rel;
}

/// Flow params small enough that a handful of frames exercises every
/// window/cap path.  Pool watermarks stay off (0) unless a test sets
/// them explicitly on the global pool.
flow_params tight_flow()
{
    flow_params flow;
    flow.enabled = true;
    flow.initial_window_bytes = 512;
    flow.window_bytes = 512;
    flow.min_window_bytes = 256;
    flow.link_soft_bytes = 1024;
    flow.link_inflight_cap_bytes = 64 * 1024;    // high: no accidental link_down
    flow.starvation_trip_us = 20000;    // 20 ms: fast but not flaky
    flow.pool_soft_bytes = 0;
    flow.pool_critical_bytes = 0;
    flow.pool_fallback_cap_bytes = 0;
    return flow;
}

/// Two-locality harness mirroring the reliability tests, with flow
/// control on and a delivery-error recorder installed on ph0.
struct flow_harness
{
    explicit flow_harness(fault_plan plan, flow_params flow = tight_flow(),
        reliability_params rel = fast_reliability())
      : inner(2)
      , faulty(inner, plan)
      , sched0(make_cfg())
      , sched1(make_cfg())
      , ph0(0, faulty, sched0, rel, flow)
      , ph1(1, faulty, sched1, rel, flow)
    {
        g_flow_sum = 0;
        ph0.set_delivery_error_handler(
            [this](delivery_error err, parcel&&) {
                if (err == delivery_error::shed_overload)
                    shed_seen.fetch_add(1);
                else
                    link_down_seen.fetch_add(1);
            });
    }

    ~flow_harness()
    {
        settle();
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config make_cfg()
    {
        scheduler_config cfg;
        cfg.num_workers = 1;
        cfg.idle_sleep_us = 50;
        return cfg;
    }

    [[nodiscard]] bool handlers_quiet()
    {
        return ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
            ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
            ph0.pending_reliability() == 0 && ph1.pending_reliability() == 0 &&
            sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0;
    }

    [[nodiscard]] bool quiet()
    {
        return handlers_quiet() && faulty.in_flight() == 0;
    }

    void settle()
    {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < 15000.0)
        {
            if (quiet())
            {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                if (quiet())
                    return;
            }
            if (handlers_quiet() && faulty.in_flight() != 0)
                faulty.drain();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "flow harness did not settle";
    }

    loopback_transport inner;
    faulty_transport faulty;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
    std::atomic<std::uint64_t> shed_seen{0};
    std::atomic<std::uint64_t> link_down_seen{0};
};

parcel make_request(std::uint32_t dst, int arg, std::uint64_t continuation = 0)
{
    parcel p;
    p.dest = dst;
    p.action = flow_record_action::id();
    p.continuation = continuation;
    p.arguments = flow_record_action::make_arguments(arg);
    return p;
}

/// RAII watermark override on the process-global pool — the pool outlives
/// every test, so leaking a watermark would shed other tests' traffic.
struct watermark_guard
{
    watermark_guard(
        std::uint64_t soft, std::uint64_t critical, std::uint64_t cap)
    {
        buffer_pool::global().set_watermarks(soft, critical, cap);
    }

    ~watermark_guard()
    {
        buffer_pool::global().set_watermarks(0, 0, 0);
    }
};

TEST(FlowControl, WindowExhaustionDefersAndReleasesWithoutLoss)
{
    // Healthy link, but a window (512 B) far below the burst volume:
    // sends must defer, credits must release them, and nothing is lost.
    flow_harness h(fault_plan{});

    constexpr int n = 120;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, 1));
    h.settle();

    EXPECT_EQ(g_flow_sum.load(), n);
    EXPECT_EQ(
        h.ph1.counters().parcels_executed.load(), static_cast<unsigned>(n));
    EXPECT_GT(h.ph0.counters().sends_deferred.load(), 0u);
    EXPECT_EQ(h.ph0.counters().sends_released.load(),
        h.ph0.counters().sends_deferred.load());
    // The receiver advertised its window on data/ack frames.
    EXPECT_GT(h.ph0.counters().credit_updates.load(), 0u);
    EXPECT_EQ(h.ph0.counters().parcels_shed.load(), 0u);
    EXPECT_EQ(h.shed_seen.load(), 0u);
}

TEST(FlowControl, DeferredSendsAreVisibleInPendingSends)
{
    // A blacked-out link accumulates deferred jobs; quiescence must see
    // them (pending_sends) until the link heals and they drain.
    fault_plan plan;
    blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.end_us = 200'000;    // forward link dark for the first 200 ms
    plan.blackouts.push_back(w);
    flow_harness h(plan);

    for (int i = 0; i != 40; ++i)
        h.ph0.put_parcel(make_request(1, 1));

    coal::stopwatch deadline;
    bool saw_deferred = false;
    while (deadline.elapsed_ms() < 150.0)
    {
        if (h.ph0.counters().sends_deferred.load() >
            h.ph0.counters().sends_released.load())
        {
            saw_deferred = true;
            EXPECT_GT(h.ph0.pending_sends(), 0u);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(saw_deferred);

    h.settle();
    EXPECT_EQ(g_flow_sum.load(), 40);
}

TEST(FlowControl, CriticalPoolPressureShedsBestEffortOnly)
{
    // Force the pool into critical by holding live slabs past a tiny
    // watermark, then offer best-effort and continuation-bearing parcels.
    flow_harness h(fault_plan{});

    watermark_guard marks(16 * 1024, 64 * 1024, 0);
    std::vector<shared_buffer> hog;
    while (buffer_pool::global().pressure() != pressure_state::critical)
        hog.emplace_back(16 * 1024);
    ASSERT_EQ(h.ph0.flow_pressure(1), pressure_state::critical);

    constexpr int n = 20;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, 1));
    // Continuation-bearing parcels are never shed (a promise waits).
    std::atomic<int> completed{0};
    for (int i = 0; i != 5; ++i)
    {
        auto const id = h.ph0.register_response_callback(
            [&completed](shared_buffer&&) { ++completed; });
        h.ph0.put_parcel(make_request(1, 1, id));
    }

    EXPECT_EQ(h.ph0.counters().parcels_shed.load(), static_cast<unsigned>(n));
    EXPECT_EQ(h.shed_seen.load(), static_cast<unsigned>(n));

    // Pressure subsides: admission reopens, traffic flows again.
    hog.clear();
    ASSERT_EQ(buffer_pool::global().pressure(), pressure_state::ok);
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_request(1, 2));
    h.settle();
    // 5 admitted continuation parcels + 20 post-pressure parcels, and the
    // shed ones never arrived.
    EXPECT_EQ(g_flow_sum.load(), 5 * 1 + n * 2);
    EXPECT_EQ(completed.load(), 5);
    EXPECT_EQ(h.ph0.counters().parcels_shed.load(), static_cast<unsigned>(n));
}

TEST(FlowControl, StarvationTripsTheBreaker)
{
    // Blackout long enough that deferred jobs starve past the trip
    // threshold (20 ms) but short enough that the link heals and the
    // harness settles with full delivery of everything not failed.
    fault_plan plan;
    blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.end_us = 150'000;
    plan.blackouts.push_back(w);
    flow_harness h(plan);

    for (int i = 0; i != 40; ++i)
        h.ph0.put_parcel(make_request(1, 1));

    coal::stopwatch deadline;
    while (h.ph0.counters().starvation_trips.load() == 0 &&
        deadline.elapsed_ms() < 1000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    EXPECT_GT(h.ph0.counters().starvation_trips.load(), 0u);
    EXPECT_GT(h.ph0.counters().circuit_breaker_trips.load(), 0u);

    // Heal: deferred jobs release and everything still arrives.
    h.settle();
    EXPECT_EQ(g_flow_sum.load(), 40);
    EXPECT_EQ(h.ph0.counters().link_down_failures.load(), 0u);
}

TEST(FlowControl, CappedDarkLinkFailsSendsWithLinkDown)
{
    // Tiny in-flight cap + long blackout: once the starvation trip opens
    // the breaker and in-flight + deferred bytes hit the cap, further
    // sends fail as link_down instead of queueing forever.
    flow_params flow = tight_flow();
    flow.link_inflight_cap_bytes = 1024;
    fault_plan plan;
    blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.end_us = 300'000;
    plan.blackouts.push_back(w);
    flow_harness h(plan, flow);

    constexpr int n = 200;
    for (int i = 0; i != n; ++i)
    {
        h.ph0.put_parcel(make_request(1, 1));
        if (i % 20 == 19)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    coal::stopwatch deadline;
    while (h.ph0.counters().link_down_failures.load() == 0 &&
        deadline.elapsed_ms() < 2000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    EXPECT_GT(h.ph0.counters().link_down_failures.load(), 0u);
    h.settle();

    // Exactly-once accounting: every offered parcel was either delivered,
    // failed as link_down, or shed at admission once the saturated link
    // pushed flow_pressure to critical — and each error was surfaced.
    std::uint64_t const failed = h.link_down_seen.load();
    std::uint64_t const shed = h.shed_seen.load();
    EXPECT_EQ(h.ph0.counters().link_down_failures.load(), failed);
    EXPECT_EQ(h.ph0.counters().parcels_shed.load(), shed);
    EXPECT_EQ(g_flow_sum.load(), n - static_cast<int>(failed + shed));
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(),
        static_cast<std::uint64_t>(n) - failed - shed);
}

TEST(FlowControl, DisabledFlowAddsNothing)
{
    // Reliability on, flow off: no credits, no deferrals, no pressure.
    flow_params off;
    off.enabled = false;
    flow_harness h(fault_plan{}, off);

    for (int i = 0; i != 50; ++i)
        h.ph0.put_parcel(make_request(1, 1));
    h.settle();

    EXPECT_EQ(g_flow_sum.load(), 50);
    EXPECT_EQ(h.ph0.counters().sends_deferred.load(), 0u);
    EXPECT_EQ(h.ph0.counters().credit_updates.load(), 0u);
    EXPECT_EQ(h.ph0.counters().parcels_shed.load(), 0u);
    EXPECT_EQ(h.ph0.flow_pressure(1), pressure_state::ok);
    EXPECT_EQ(h.ph0.current_pressure(), pressure_state::ok);
}

}    // namespace
