// Parcel wire format and message framing — what coalescing actually
// batches.  Conservation and corruption tests here guard the experiments
// against silent message loss.

#include <coal/parcel/parcel.hpp>

#include <gtest/gtest.h>

#include <random>

namespace {

using coal::parcel::decode_message;
using coal::parcel::encode_message;
using coal::parcel::message_wire_size;
using coal::parcel::parcel;
using coal::serialization::byte_buffer;
using coal::serialization::serialization_error;

parcel make_parcel(std::uint32_t src, std::uint32_t dst, std::uint64_t action,
    std::size_t payload_size, std::uint8_t fill)
{
    parcel p;
    p.source = src;
    p.dest = dst;
    p.action = action;
    p.continuation = action ^ 0xff;
    p.arguments = byte_buffer(payload_size, fill);
    return p;
}

TEST(Parcel, WireSizeIsHeaderPlusPayload)
{
    auto const p = make_parcel(0, 1, 42, 100, 0);
    EXPECT_EQ(p.wire_size(), parcel::header_bytes + 100);
}

TEST(Message, SingleParcelRoundTrip)
{
    std::vector<parcel> in;
    in.push_back(make_parcel(3, 7, 0xabcdef, 33, 0x5a));

    auto const wire = encode_message(in);
    EXPECT_EQ(wire.size(), message_wire_size(in));

    auto const out = decode_message(wire);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].source, 3u);
    EXPECT_EQ(out[0].dest, 7u);
    EXPECT_EQ(out[0].action, 0xabcdefu);
    EXPECT_EQ(out[0].continuation, 0xabcdefu ^ 0xff);
    EXPECT_EQ(out[0].arguments, byte_buffer(33, 0x5a));
}

TEST(Message, EmptyMessage)
{
    std::vector<parcel> const none;
    auto const wire = encode_message(none);
    EXPECT_EQ(decode_message(wire).size(), 0u);
}

TEST(Message, CoalescedBatchPreservesOrderAndContent)
{
    std::vector<parcel> in;
    for (std::uint8_t i = 0; i != 100; ++i)
        in.push_back(make_parcel(0, 1, 1000 + i, i, i));

    auto const out = decode_message(encode_message(in));
    ASSERT_EQ(out.size(), 100u);
    for (std::uint8_t i = 0; i != 100; ++i)
    {
        EXPECT_EQ(out[i].action, 1000u + i);
        EXPECT_EQ(out[i].arguments.size(), i);
        if (i > 0)
        {
            EXPECT_EQ(out[i].arguments[0], i);
        }
    }
}

TEST(Message, ParcelsWithEmptyPayloads)
{
    std::vector<parcel> in;
    in.push_back(make_parcel(0, 1, 5, 0, 0));
    in.push_back(make_parcel(0, 1, 6, 0, 0));
    auto const out = decode_message(encode_message(in));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].arguments.empty());
}

TEST(Message, ByteConservationProperty)
{
    // Total payload bytes in == total payload bytes out, across random
    // batch shapes (the framing adds exactly the documented header).
    std::mt19937 rng(42);
    std::uniform_int_distribution<int> batch(1, 64);
    std::uniform_int_distribution<int> size(0, 300);

    for (int round = 0; round != 20; ++round)
    {
        std::vector<parcel> in;
        std::size_t payload_in = 0;
        int const n = batch(rng);
        for (int i = 0; i != n; ++i)
        {
            auto const s = static_cast<std::size_t>(size(rng));
            payload_in += s;
            in.push_back(make_parcel(0, 1,
                static_cast<std::uint64_t>(i), s,
                static_cast<std::uint8_t>(i)));
        }

        auto const wire = encode_message(in);
        std::size_t const expected_frame = coal::parcel::frame_prefix_bytes +
            static_cast<std::size_t>(n) * (parcel::header_bytes + 8) +
            payload_in;
        EXPECT_EQ(wire.size(), expected_frame);

        auto const out = decode_message(wire);
        std::size_t payload_out = 0;
        for (auto const& p : out)
            payload_out += p.arguments.size();
        EXPECT_EQ(payload_out, payload_in);
    }
}

TEST(Message, ReliabilityHeaderRoundTrip)
{
    coal::parcel::frame_header in_hdr;
    in_hdr.seq = 42;
    in_hdr.ack = 41;
    in_hdr.sack = 0b1010;

    auto const wire =
        encode_message({make_parcel(0, 1, 7, 4, 0x11)}, in_hdr);
    coal::parcel::frame_header out_hdr;
    auto const out = decode_message(wire, &out_hdr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out_hdr.seq, 42u);
    EXPECT_EQ(out_hdr.ack, 41u);
    EXPECT_EQ(out_hdr.sack, 0b1010u);
}

TEST(Message, DefaultHeaderIsUnsequenced)
{
    auto const wire = encode_message({make_parcel(0, 1, 7, 4, 0)});
    coal::parcel::frame_header hdr;
    (void) decode_message(wire, &hdr);
    EXPECT_EQ(hdr.seq, 0u);
    EXPECT_EQ(hdr.ack, 0u);
    EXPECT_EQ(hdr.sack, 0u);
}

TEST(Message, PatchFrameAcksRewritesInPlace)
{
    coal::parcel::frame_header hdr;
    hdr.seq = 9;
    auto wire = encode_message({make_parcel(0, 1, 7, 4, 0)}, hdr);
    coal::parcel::patch_frame_acks(wire, 123, 0xf0);

    coal::parcel::frame_header out;
    (void) decode_message(wire, &out);
    EXPECT_EQ(out.seq, 9u);    // seq untouched
    EXPECT_EQ(out.ack, 123u);
    EXPECT_EQ(out.sack, 0xf0u);
}

TEST(Message, AckOnlyFrameHasNoParcels)
{
    coal::parcel::frame_header hdr;
    hdr.ack = 17;
    auto const wire = encode_message({}, hdr);
    EXPECT_EQ(wire.size(), coal::parcel::frame_prefix_bytes);
    coal::parcel::frame_header out;
    EXPECT_TRUE(decode_message(wire, &out).empty());
    EXPECT_EQ(out.ack, 17u);
}

TEST(Message, BadMagicRejected)
{
    auto wire = encode_message({make_parcel(0, 1, 1, 4, 0)}).flatten_copy().to_vector();
    wire[0] ^= 0xff;
    EXPECT_THROW(
        decode_message(coal::serialization::shared_buffer(wire)),
        serialization_error);
}

TEST(Message, TruncatedFrameRejected)
{
    auto wire = encode_message({make_parcel(0, 1, 1, 100, 0)}).flatten_copy().to_vector();
    wire.resize(wire.size() / 2);
    EXPECT_THROW(
        decode_message(coal::serialization::shared_buffer(wire)),
        serialization_error);
}

TEST(Message, TrailingGarbageRejected)
{
    auto wire = encode_message({make_parcel(0, 1, 1, 4, 0)}).flatten_copy().to_vector();
    wire.push_back(0);
    EXPECT_THROW(
        decode_message(coal::serialization::shared_buffer(wire)),
        serialization_error);
}

TEST(Message, LyingParcelCountRejected)
{
    auto wire = encode_message({make_parcel(0, 1, 1, 4, 0)}).flatten_copy().to_vector();
    // Bump the count field (offset 4, little-endian u32) without adding
    // parcels.
    wire[4] = 200;
    EXPECT_THROW(
        decode_message(coal::serialization::shared_buffer(wire)),
        serialization_error);
}

TEST(Message, LyingPayloadLengthRejected)
{
    auto wire = encode_message({make_parcel(0, 1, 1, 4, 0)}).flatten_copy().to_vector();
    // The payload-length field sits after the frame prefix + parcel header;
    // set it huge.
    std::size_t const offset =
        coal::parcel::frame_prefix_bytes + parcel::header_bytes;
    wire[offset] = 0xff;
    wire[offset + 1] = 0xff;
    wire[offset + 2] = 0xff;
    EXPECT_THROW(
        decode_message(coal::serialization::shared_buffer(wire)),
        serialization_error);
}

}    // namespace
