// Sharded peer store and idle eviction: due-ring scheduling semantics,
// tombstone demote/rehydrate round-trips, lock-free-on-read lookup under
// concurrent insertion, and the end-to-end invariants — exactly-once
// delivery across evict/rehydrate cycles (with retransmits in flight),
// evicted peers dropping out of the heartbeat/phi footprint, and
// crash/rejoin staying correct while the eviction sweeper runs.

#include <coal/parcel/peer_store.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

namespace {

std::atomic<long long> g_shard_sum{0};
std::atomic<std::uint64_t> g_shard_count{0};

int shard_record(int x)
{
    g_shard_sum += x;
    g_shard_count.fetch_add(1);
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(shard_record, shard_record_action);

namespace {

using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::parcel::delivery_error;
using coal::parcel::due_ring;
using coal::parcel::membership_params;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::peer_entry;
using coal::parcel::peer_state;
using coal::parcel::peer_status;
using coal::parcel::peer_store;
using coal::parcel::peer_store_params;
using coal::parcel::reliability_params;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

constexpr std::int64_t never = std::numeric_limits<std::int64_t>::max();

// ---------------------------------------------------------------------
// due_ring unit tests
// ---------------------------------------------------------------------

TEST(DueRing, SchedulesAndServicesAtDeadline)
{
    due_ring ring;
    auto e = std::make_shared<peer_entry>(7);

    std::int64_t const t0 = 10 * due_ring::tick_ns;
    ring.schedule(e, t0 + 5 * due_ring::tick_ns);
    EXPECT_EQ(ring.queued(), 1u);

    int serviced = 0;
    auto service = [&](peer_entry& pe) {
        EXPECT_EQ(pe.id, 7u);
        ++serviced;
        return never;
    };

    // Not yet due: the item survives the drain.
    EXPECT_FALSE(ring.drain(t0 + 1, service));
    EXPECT_EQ(serviced, 0);
    EXPECT_EQ(ring.queued(), 1u);

    // Due: serviced exactly once, registration cleared.
    EXPECT_TRUE(ring.drain(t0 + 6 * due_ring::tick_ns, service));
    EXPECT_EQ(serviced, 1);
    EXPECT_EQ(ring.queued(), 0u);
    EXPECT_EQ(e->ring_due.load(), never);
}

TEST(DueRing, CasMinKeepsEarliestAndPopsAreIdempotent)
{
    due_ring ring;
    auto e = std::make_shared<peer_entry>(1);

    std::int64_t const t0 = 100 * due_ring::tick_ns;
    ring.schedule(e, t0 + 8 * due_ring::tick_ns);
    // Strictly earlier: inserts a second item and lowers ring_due.
    ring.schedule(e, t0 + 2 * due_ring::tick_ns);
    // Later than the current registration: CAS-min rejects it, no item.
    ring.schedule(e, t0 + 20 * due_ring::tick_ns);
    EXPECT_EQ(ring.queued(), 2u);
    EXPECT_EQ(e->ring_due.load(), t0 + 2 * due_ring::tick_ns);

    int serviced = 0;
    auto service = [&](peer_entry&) {
        ++serviced;
        return never;
    };

    // First drain pops the early item; servicing the leftover later item
    // is a harmless duplicate (idempotence), never a missed deadline.
    EXPECT_TRUE(ring.drain(t0 + 3 * due_ring::tick_ns, service));
    EXPECT_EQ(serviced, 1);
    EXPECT_TRUE(ring.drain(t0 + 9 * due_ring::tick_ns, service));
    EXPECT_EQ(serviced, 2);
    EXPECT_EQ(ring.queued(), 0u);
}

TEST(DueRing, ServiceReturnValueReArms)
{
    due_ring ring;
    auto e = std::make_shared<peer_entry>(3);

    std::int64_t const t0 = 50 * due_ring::tick_ns;
    ring.schedule(e, t0 + due_ring::tick_ns);

    int serviced = 0;
    auto periodic = [&](peer_entry&) -> std::int64_t {
        ++serviced;
        // Re-arm twice, then stop.
        if (serviced < 3)
            return t0 + (serviced + 1) * 2 * due_ring::tick_ns;
        return never;
    };

    EXPECT_TRUE(ring.drain(t0 + 2 * due_ring::tick_ns, periodic));
    EXPECT_EQ(serviced, 1);
    EXPECT_EQ(ring.queued(), 1u);
    EXPECT_TRUE(ring.drain(t0 + 5 * due_ring::tick_ns, periodic));
    EXPECT_EQ(serviced, 2);
    EXPECT_TRUE(ring.drain(t0 + 7 * due_ring::tick_ns, periodic));
    EXPECT_EQ(serviced, 3);
    EXPECT_EQ(ring.queued(), 0u);
    EXPECT_FALSE(ring.drain(t0 + 100 * due_ring::tick_ns, periodic));
    EXPECT_EQ(serviced, 3);
}

TEST(DueRing, FarFutureItemsSurviveManyRevolutions)
{
    due_ring ring;
    auto e = std::make_shared<peer_entry>(9);

    // Beyond the ring horizon (bucket_count * tick): the item must keep
    // surviving bucket revisits until its absolute time arrives.
    std::int64_t const t0 = due_ring::tick_ns;
    std::int64_t const far =
        t0 + 3 * due_ring::bucket_count * due_ring::tick_ns;
    ring.schedule(e, far);

    int serviced = 0;
    auto service = [&](peer_entry&) {
        ++serviced;
        return never;
    };
    for (int rev = 1; rev <= 2; ++rev)
    {
        ring.drain(t0 +
                rev * static_cast<std::int64_t>(due_ring::bucket_count) *
                    due_ring::tick_ns,
            service);
        EXPECT_EQ(serviced, 0);
    }
    ring.drain(far + due_ring::tick_ns, service);
    EXPECT_EQ(serviced, 1);
}

// ---------------------------------------------------------------------
// peer_store unit tests
// ---------------------------------------------------------------------

TEST(PeerStore, FindMissesLockFreeAndHitsAfterInsert)
{
    peer_store store;
    EXPECT_EQ(store.find(42), nullptr);

    peer_entry& e = store.get_or_create(42);
    EXPECT_EQ(e.id, 42u);
    EXPECT_EQ(store.find(42), &e);
    EXPECT_EQ(&store.get_or_create(42), &e);
    EXPECT_EQ(store.find(43), nullptr);
    EXPECT_EQ(store.size(), 1u);
}

TEST(PeerStore, TombstoneRoundTripPreservesStreamState)
{
    peer_store store;
    peer_entry& e = store.get_or_create(5);

    {
        std::lock_guard lock(e.lock);
        peer_state& st = store.hydrate(e, /*self_epoch=*/1);
        EXPECT_EQ(st.next_seq, 1u);
        EXPECT_EQ(st.link_epoch, 1u);    // virgin entry binds self epoch
        st.next_seq = 42;
        st.cum_received = 17;
        st.stream_gen = 3;
        st.epoch = 9;
        st.link_epoch = 2;
        st.status = peer_status::alive;
    }
    EXPECT_EQ(store.active(), 1u);
    EXPECT_EQ(store.tombstoned(), 0u);

    {
        std::lock_guard lock(e.lock);
        ASSERT_TRUE(peer_store::evictable(*e.live));
        store.demote(e);
        EXPECT_EQ(e.live, nullptr);
        EXPECT_TRUE(e.tombstoned);
        EXPECT_EQ(e.tomb.next_seq, 42u);
        EXPECT_EQ(e.tomb.cum_received, 17u);
        EXPECT_EQ(e.tomb.stream_gen, 3u);
        EXPECT_EQ(e.tomb.epoch, 9u);
        EXPECT_EQ(e.tomb.link_epoch, 2u);
    }
    EXPECT_EQ(store.active(), 0u);
    EXPECT_EQ(store.tombstoned(), 1u);
    EXPECT_EQ(store.evictions(), 1u);

    {
        std::lock_guard lock(e.lock);
        // self_epoch moved on (5) but the stream stays bound to the
        // tombstoned link epoch — rehydration is NOT a fence.
        peer_state& st = store.hydrate(e, /*self_epoch=*/5);
        EXPECT_EQ(st.next_seq, 42u);
        EXPECT_EQ(st.cum_received, 17u);
        EXPECT_EQ(st.stream_gen, 3u);
        EXPECT_EQ(st.epoch, 9u);
        EXPECT_EQ(st.link_epoch, 2u);
        EXPECT_FALSE(e.tombstoned);
    }
    EXPECT_EQ(store.active(), 1u);
    EXPECT_EQ(store.tombstoned(), 0u);
    EXPECT_EQ(store.rehydrations(), 1u);
}

TEST(PeerStore, ResetDropsTombstoneMemory)
{
    peer_store store;
    peer_entry& e = store.get_or_create(8);
    {
        std::lock_guard lock(e.lock);
        peer_state& st = store.hydrate(e, 1);
        st.next_seq = 100;
        store.demote(e);
        store.reset(e);
        EXPECT_FALSE(e.tombstoned);
        EXPECT_EQ(e.live, nullptr);
        // A fresh hydration starts a virgin stream.
        peer_state& st2 = store.hydrate(e, 2);
        EXPECT_EQ(st2.next_seq, 1u);
        EXPECT_EQ(st2.link_epoch, 2u);
    }
}

TEST(PeerStore, EvictableRejectsAnyRetainedProtocolState)
{
    peer_state st;
    EXPECT_TRUE(peer_store::evictable(st));
    st.ack_pending = true;
    EXPECT_FALSE(peer_store::evictable(st));
    st.ack_pending = false;
    st.breaker_open = true;
    EXPECT_FALSE(peer_store::evictable(st));
    st.breaker_open = false;
    st.unacked_bytes = 1;
    EXPECT_FALSE(peer_store::evictable(st));
    st.unacked_bytes = 0;
    st.deferred.push_back({});
    EXPECT_FALSE(peer_store::evictable(st));
}

TEST(PeerStore, ConcurrentInsertAndLookupStress)
{
    peer_store store;
    constexpr std::uint32_t ids = 4096;
    constexpr int threads = 8;

    std::atomic<bool> fail{false};
    std::vector<std::thread> workers;
    workers.reserve(threads + 1);
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&store, &fail, t] {
            // Each thread inserts an interleaved stripe and reads back
            // everything inserted so far — misses must only happen for
            // ids no thread has created yet, never false negatives for
            // its own stripe.
            for (std::uint32_t i = static_cast<std::uint32_t>(t); i < ids;
                i += threads)
            {
                peer_entry& e = store.get_or_create(i);
                if (e.id != i)
                    fail = true;
                peer_entry* back = store.find(i);
                if (back == nullptr || back->id != i)
                    fail = true;
            }
        });
    }
    // One thread concurrently republishes snapshots and walks shards,
    // exactly like the eviction clock hand.
    workers.emplace_back([&store] {
        std::vector<std::shared_ptr<peer_entry>> scratch;
        for (int round = 0; round != 50; ++round)
        {
            for (std::size_t s = 0; s != peer_store::shard_count; ++s)
            {
                store.refresh_snapshot(s);
                scratch.clear();
                store.collect_shard(s, scratch);
            }
        }
    });
    for (auto& w : workers)
        w.join();

    EXPECT_FALSE(fail.load());
    EXPECT_EQ(store.size(), ids);
    for (std::uint32_t i = 0; i != ids; ++i)
        ASSERT_NE(store.find(i), nullptr) << "id " << i;
    EXPECT_GE(store.shard_max_occupancy(),
        ids / peer_store::shard_count);
}

// ---------------------------------------------------------------------
// Integration: eviction under live parcelhandlers
// ---------------------------------------------------------------------

reliability_params fast_reliability()
{
    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;
    return rel;
}

membership_params fast_membership()
{
    membership_params m;
    m.enabled = true;
    m.heartbeat_interval_us = 2000;
    m.probe_interval_us = 10000;
    m.suspect_phi = 3.0;
    m.dead_phi = 8.0;
    m.min_dead_us = 50000;
    return m;
}

// Aggressive idle eviction so demote/rehydrate cycles happen within a
// test's sleep windows.
peer_store_params fast_store()
{
    peer_store_params s;
    s.evict_idle_us = 25000;
    s.evict_scan_budget = 64;
    s.evict_scan_interval_us = 200;
    return s;
}

struct sharding_harness
{
    explicit sharding_harness(peer_store_params store = fast_store(),
        membership_params mem = fast_membership())
      : inner(2)
      , faulty(inner, fault_plan{})
      , sched0(make_cfg())
      , sched1(make_cfg())
      , ph0(0, faulty, sched0, fast_reliability(), {}, mem, store)
      , ph1(1, faulty, sched1, fast_reliability(), {}, mem, store)
    {
        g_shard_sum = 0;
        g_shard_count = 0;
        ph0.set_delivery_error_handler([this](delivery_error, parcel&&) {
            failed0.fetch_add(1);
        });
    }

    ~sharding_harness()
    {
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config make_cfg()
    {
        scheduler_config cfg;
        cfg.num_workers = 2;
        cfg.idle_sleep_us = 50;
        return cfg;
    }

    void put(parcelhandler& ph, std::uint32_t dst, int arg)
    {
        parcel p;
        p.dest = dst;
        p.action = shard_record_action::id();
        p.arguments = shard_record_action::make_arguments(arg);
        ph.put_parcel(std::move(p));
    }

    template <typename Cond>
    void wait_for(Cond&& cond, char const* what, double deadline_ms = 20000.0)
    {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < deadline_ms)
        {
            if (cond())
                return;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "timed out waiting for: " << what;
    }

    loopback_transport inner;
    faulty_transport faulty;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
    std::atomic<std::uint64_t> failed0{0};
};

TEST(PeerSharding, ExactlyOnceAcrossEvictRehydrateCycles)
{
    sharding_harness h;

    long long expected = 0;
    int value = 1;
    // Several burst / idle cycles: each idle window is long enough for
    // both sides to demote the link; the next burst must rehydrate from
    // the tombstone and deliver every parcel exactly once (the sum is
    // exact — a replayed or suppressed parcel shifts it).
    for (int cycle = 0; cycle != 3; ++cycle)
    {
        for (int i = 0; i != 10; ++i)
        {
            h.put(h.ph0, 1, value);
            expected += value;
            ++value;
        }
        h.wait_for([&] { return g_shard_sum.load() == expected; },
            "cycle delivery");

        h.wait_for(
            [&] {
                return h.ph0.debug_peer(1).evicted &&
                    h.ph0.peer_stats().active == 0;
            },
            "idle eviction at the sender");
    }

    EXPECT_EQ(g_shard_sum.load(), expected);
    EXPECT_EQ(g_shard_count.load(), 30u);
    EXPECT_EQ(h.failed0.load(), 0u);
    EXPECT_GE(h.ph0.peer_stats().evictions, 3u);
    EXPECT_GE(h.ph0.peer_stats().rehydrations, 2u);
    EXPECT_GE(h.ph0.counters().peers_evicted.load(), 3u);
    EXPECT_GE(h.ph0.counters().peers_rehydrated.load(), 2u);
    // Sender-side conservation: everything offered was confirmed.
    EXPECT_EQ(h.ph0.counters().parcels_confirmed.load(), 30u);
}

TEST(PeerSharding, EvictedPeersLeaveTheLivenessFootprint)
{
    sharding_harness h;

    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_shard_sum.load() == 1; }, "delivery");
    EXPECT_EQ(h.ph0.health().known_peers, 1u);

    // Heartbeats are flowing, but they are not data: both sides demote
    // the link once it is data-idle.
    h.wait_for(
        [&] {
            return h.ph0.peer_stats().active == 0 &&
                h.ph1.peer_stats().active == 0;
        },
        "mutual idle eviction");
    EXPECT_EQ(h.ph0.peer_stats().evicted, 1u);
    EXPECT_EQ(h.ph1.peer_stats().evicted, 1u);

    // An evicted peer is out of the live footprint: no membership gauge,
    // no heartbeat emission, no phi scoring (liveness defaults to alive).
    EXPECT_EQ(h.ph0.health().known_peers, 0u);
    EXPECT_EQ(h.ph1.health().known_peers, 0u);
    auto const beats0 = h.ph0.counters().heartbeats_sent.load();
    auto const beats1 = h.ph1.counters().heartbeats_sent.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(h.ph0.counters().heartbeats_sent.load(), beats0);
    EXPECT_EQ(h.ph1.counters().heartbeats_sent.load(), beats1);
    EXPECT_EQ(h.ph0.peer_liveness(1), peer_status::alive);
    EXPECT_EQ(h.ph0.counters().peers_suspected.load(), 0u);

    // Renewed traffic wakes the link back up transparently.
    h.put(h.ph0, 1, 2);
    h.wait_for([&] { return g_shard_sum.load() == 3; }, "post-evict delivery");
    EXPECT_GE(h.ph0.peer_stats().rehydrations, 1u);
    EXPECT_EQ(h.ph0.health().known_peers, 1u);
}

TEST(PeerSharding, ConcurrentSendersRaceTheEvictionSweeper)
{
    sharding_harness h;

    // Four producer threads push bursts with idle gaps sized to the
    // eviction threshold, so demotes and rehydrations interleave with
    // live sends and in-flight retransmits.  Every parcel carries a
    // distinct value; exactly-once delivery means the sum is exact.
    constexpr int threads = 4;
    constexpr int bursts = 5;
    constexpr int per_burst = 40;
    std::atomic<long long> offered_sum{0};
    std::vector<std::thread> senders;
    senders.reserve(threads);
    for (int t = 0; t != threads; ++t)
    {
        senders.emplace_back([&h, &offered_sum, t] {
            int v = t * 100000;
            for (int b = 0; b != bursts; ++b)
            {
                for (int i = 0; i != per_burst; ++i)
                {
                    ++v;
                    h.put(h.ph0, 1, v);
                    offered_sum.fetch_add(v);
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(30 + 7 * t));
            }
        });
    }
    for (auto& s : senders)
        s.join();

    std::uint64_t const offered = threads * bursts * per_burst;
    h.wait_for([&] { return g_shard_count.load() == offered; },
        "all parcels delivered");
    EXPECT_EQ(g_shard_sum.load(), offered_sum.load());
    EXPECT_EQ(h.failed0.load(), 0u);
    h.wait_for(
        [&] { return h.ph0.counters().parcels_confirmed.load() == offered; },
        "all parcels confirmed");
}

TEST(PeerSharding, CrashRejoinStaysCorrectWhileSweeperRuns)
{
    sharding_harness h;

    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_shard_sum.load() == 1; }, "initial delivery");

    // Let the sweeper demote the idle link on both sides first: the
    // crash/rejoin cycle below then exercises the tombstone gate (stale
    // epochs must be fenced by tombstones, not just by live state).
    h.wait_for(
        [&] {
            return h.ph0.peer_stats().active == 0 &&
                h.ph1.peer_stats().active == 0;
        },
        "pre-crash eviction");

    h.faulty.kill_locality(1);
    h.ph1.simulate_crash();
    h.ph1.restart_incarnation();
    h.faulty.restart_locality(1);
    EXPECT_EQ(h.ph1.epoch(), 2u);

    // The evicted sender discovers the restart on first contact: its
    // tombstone still remembers epoch 1, so the handshake parcel is
    // addressed to the fenced incarnation and may legitimately fail as
    // peer_failed when the rejoin fences (at-most-once, never silently
    // replayed).  Wait for the sender to adopt the new epoch and for the
    // handshake parcel to settle (confirmed or failed) either way.
    h.put(h.ph0, 1, 7);
    h.wait_for([&] { return h.ph0.debug_peer(1).epoch == 2; },
        "rejoin under the new epoch");
    h.wait_for(
        [&] {
            return h.ph0.counters().parcels_confirmed.load() +
                h.failed0.load() == 2;
        },
        "handshake parcel settles");
    auto const handshake_failures = h.failed0.load();
    EXPECT_LE(handshake_failures, 1u);
    auto const base_count = g_shard_count.load();
    auto const base_sum = g_shard_sum.load();

    // Concurrent senders into the freshly rejoined link while the
    // eviction sweeper stays active.
    std::atomic<long long> offered_sum{0};
    std::vector<std::thread> senders;
    for (int t = 0; t != 2; ++t)
    {
        senders.emplace_back([&h, &offered_sum, t] {
            int v = (t + 1) * 1000;
            for (int i = 0; i != 50; ++i)
            {
                ++v;
                h.put(h.ph0, 1, v);
                offered_sum.fetch_add(v);
            }
        });
    }
    for (auto& s : senders)
        s.join();

    // The restarted incarnation executes everything offered after the
    // handshake exactly once.
    h.wait_for(
        [&] { return g_shard_count.load() == base_count + 100; },
        "post-rejoin delivery");
    EXPECT_EQ(g_shard_sum.load(), base_sum + offered_sum.load());
    EXPECT_EQ(h.failed0.load(), handshake_failures);
    EXPECT_EQ(h.ph0.debug_peer(1).epoch, 2u);

    // And the refreshed link still evicts cleanly afterwards.
    h.wait_for([&] { return h.ph0.peer_stats().active == 0; },
        "post-rejoin eviction");
}

TEST(PeerSharding, EvictionDisabledKeepsPeersResident)
{
    peer_store_params off;
    off.evict_idle_us = 0;
    sharding_harness h(off);

    h.put(h.ph0, 1, 5);
    h.wait_for([&] { return g_shard_sum.load() == 5; }, "delivery");
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_EQ(h.ph0.peer_stats().active, 1u);
    EXPECT_EQ(h.ph0.peer_stats().evictions, 0u);
    EXPECT_FALSE(h.ph0.debug_peer(1).evicted);
}

}    // namespace
