// Batched receive pipeline: lazy decode primitives (peek / boundary scan /
// range decode), budgeted multi-frame drain, chunked bulk-spawned
// execution, and duplicate suppression ahead of the modeled per-message
// receive overhead.  The concurrency tests (senders racing the drain, the
// drain racing chunk execution) carry the "race" ctest label so the tsan
// preset runs this binary under ThreadSanitizer.

#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/serialization/archive.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace {

std::atomic<std::uint64_t> g_rp_count{0};
std::atomic<long long> g_rp_sum{0};
std::mutex g_rp_order_lock;
std::vector<int> g_rp_order;

int rp_record(int x)
{
    g_rp_count.fetch_add(1, std::memory_order_relaxed);
    g_rp_sum.fetch_add(x, std::memory_order_relaxed);
    {
        std::lock_guard lock(g_rp_order_lock);
        g_rp_order.push_back(x);
    }
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(rp_record, rp_record_action);

namespace {

using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::parcel::decode_message;
using coal::parcel::decode_parcel_range;
using coal::parcel::encode_message;
using coal::parcel::frame_header;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::peek_frame;
using coal::parcel::reliability_params;
using coal::parcel::scan_parcel_offsets;
using coal::serialization::serialization_error;
using coal::serialization::shared_buffer;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

void reset_globals()
{
    g_rp_count = 0;
    g_rp_sum = 0;
    std::lock_guard lock(g_rp_order_lock);
    g_rp_order.clear();
}

parcel make_parcel(std::uint32_t dst, int arg)
{
    parcel p;
    p.dest = dst;
    p.action = rp_record_action::id();
    p.arguments = rp_record_action::make_arguments(arg);
    return p;
}

std::vector<parcel> make_batch(std::uint32_t dst, int first, int count)
{
    std::vector<parcel> batch;
    batch.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i != count; ++i)
        batch.push_back(make_parcel(dst, first + i));
    return batch;
}

// ---- lazy decode primitives ----------------------------------------------

TEST(ReceivePipeline, PeekFrameReadsPrefixOnly)
{
    frame_header hdr;
    hdr.seq = 7;
    hdr.ack = 5;
    hdr.sack = 0b101;
    auto const flat = encode_message(make_batch(1, 0, 3), hdr).flatten_copy();

    auto const info = peek_frame(flat);
    EXPECT_EQ(info.count, 3u);
    EXPECT_EQ(info.header.seq, 7u);
    EXPECT_EQ(info.header.ack, 5u);
    EXPECT_EQ(info.header.sack, 0b101u);
}

TEST(ReceivePipeline, PeekFrameRejectsBadMagic)
{
    auto const flat = encode_message(make_batch(1, 0, 1)).flatten_copy();
    std::vector<std::uint8_t> bytes(flat.data(), flat.data() + flat.size());
    bytes[0] ^= 0xff;
    EXPECT_THROW(
        peek_frame(shared_buffer(bytes.data(), bytes.size())),
        serialization_error);
}

TEST(ReceivePipeline, PeekFrameRejectsShortBuffer)
{
    auto const flat = encode_message(make_batch(1, 0, 1)).flatten_copy();
    EXPECT_THROW(
        peek_frame(shared_buffer(flat.data(), 8)), serialization_error);
}

TEST(ReceivePipeline, ScanOffsetsMatchFullDecode)
{
    constexpr int count = 20;
    constexpr std::size_t step = 6;
    auto const flat = encode_message(make_batch(1, 100, count)).flatten_copy();

    auto const offsets = scan_parcel_offsets(flat, count, step);
    // ceil(20 / 6) = 4 chunk boundaries + the end sentinel.
    ASSERT_EQ(offsets.size(), 5u);
    EXPECT_EQ(offsets.back(), flat.size());

    auto const reference = decode_message(flat);
    ASSERT_EQ(reference.size(), static_cast<std::size_t>(count));

    std::size_t decoded = 0;
    for (std::size_t c = 0; c + 1 < offsets.size(); ++c)
    {
        std::size_t const in_chunk =
            std::min<std::size_t>(step, count - decoded);
        auto const chunk = decode_parcel_range(flat, offsets[c], in_chunk);
        ASSERT_EQ(chunk.size(), in_chunk);
        for (std::size_t i = 0; i != in_chunk; ++i)
        {
            auto const& expect = reference[decoded + i];
            EXPECT_EQ(chunk[i].action, expect.action);
            EXPECT_EQ(chunk[i].dest, expect.dest);
            ASSERT_EQ(chunk[i].arguments.size(), expect.arguments.size());
            EXPECT_EQ(std::memcmp(chunk[i].arguments.data(),
                          expect.arguments.data(), expect.arguments.size()),
                0);
        }
        decoded += in_chunk;
    }
    EXPECT_EQ(decoded, static_cast<std::size_t>(count));
}

TEST(ReceivePipeline, ScanRejectsTruncatedFrame)
{
    auto const flat = encode_message(make_batch(1, 0, 4)).flatten_copy();
    shared_buffer const truncated(flat.data(), flat.size() - 3);
    EXPECT_THROW(scan_parcel_offsets(truncated, 4, 2), serialization_error);
}

// ---- integration over loopback -------------------------------------------

// Two-locality harness over loopback with a configurable receiver worker
// count (the sender side keeps one worker).
struct pipeline_harness
{
    explicit pipeline_harness(unsigned receiver_workers)
      : transport(2)
      , sched0(make_cfg(1))
      , sched1(make_cfg(receiver_workers))
      , ph0(0, transport, sched0)
      , ph1(1, transport, sched1)
    {
        reset_globals();
    }

    ~pipeline_harness()
    {
        settle();
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config make_cfg(unsigned workers)
    {
        scheduler_config cfg;
        cfg.num_workers = workers;
        cfg.idle_sleep_us = 50;
        return cfg;
    }

    [[nodiscard]] bool quiet()
    {
        return ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
            ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
            sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0;
    }

    void settle()
    {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < 15000.0)
        {
            if (quiet())
            {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                if (quiet())
                    return;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "pipeline harness did not settle";
    }

    loopback_transport transport;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
};

TEST(ReceivePipeline, CoalescedFrameExecutesInChunks)
{
    pipeline_harness h(1);
    h.ph0.send_message(1, make_batch(1, 0, 100));
    h.settle();

    EXPECT_EQ(g_rp_count.load(), 100u);
    EXPECT_EQ(g_rp_sum.load(), 99ll * 100 / 2);

    auto const& c = h.ph1.counters();
    EXPECT_EQ(c.parcels_received.load(), 100u);
    EXPECT_EQ(c.chunk_parcels.load(), 100u);
    // One worker: chunk = max(ceil(100/2), 8) = 50 -> two chunk tasks.
    EXPECT_EQ(c.chunk_tasks.load(), 2u);
    EXPECT_GE(c.receive_drains.load(), 1u);
    EXPECT_GE(c.frames_drained.load(), 1u);
    EXPECT_GT(c.decode_offload_ns.load(), 0u);
}

TEST(ReceivePipeline, SingletonFramesDrainWithBudget)
{
    pipeline_harness h(1);
    constexpr int n = 200;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_parcel(1, i));
    h.settle();

    EXPECT_EQ(g_rp_count.load(), static_cast<std::uint64_t>(n));
    auto const& c = h.ph1.counters();
    EXPECT_EQ(c.frames_drained.load(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(c.messages_received.load(), static_cast<std::uint64_t>(n));
    // Every drain consumed at least one frame by definition.
    EXPECT_LE(c.receive_drains.load(), c.frames_drained.load());
    EXPECT_GT(c.receive_drains.load(), 0u);
    // 1 parcel per frame -> 1 chunk per frame.
    EXPECT_EQ(c.chunk_tasks.load(), static_cast<std::uint64_t>(n));
}

// ---- concurrency (race label; run under tsan) ----------------------------

TEST(ReceivePipeline, ConcurrentCoalescedSendersExactlyOnce)
{
    pipeline_harness h(4);

    constexpr int senders = 4;
    constexpr int batches_per_sender = 10;
    constexpr int batch_size = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t != senders; ++t)
    {
        threads.emplace_back([&h, t] {
            for (int b = 0; b != batches_per_sender; ++b)
            {
                h.ph0.send_message(1,
                    make_batch(1, t * 100000 + b * 1000, batch_size));
            }
        });
    }
    for (auto& th : threads)
        th.join();
    h.settle();

    constexpr std::uint64_t expected =
        std::uint64_t(senders) * batches_per_sender * batch_size;
    EXPECT_EQ(g_rp_count.load(), expected);
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(), expected);
    EXPECT_EQ(h.ph1.counters().chunk_parcels.load(), expected);
}

TEST(ReceivePipeline, ConcurrentSingletonSendersExactlyOnce)
{
    pipeline_harness h(2);

    constexpr int senders = 4;
    constexpr int per_sender = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t != senders; ++t)
    {
        threads.emplace_back([&h, t] {
            for (int i = 0; i != per_sender; ++i)
                h.ph0.put_parcel(make_parcel(1, t * 1000 + i));
        });
    }
    for (auto& th : threads)
        th.join();
    h.settle();

    constexpr std::uint64_t expected = std::uint64_t(senders) * per_sender;
    EXPECT_EQ(g_rp_count.load(), expected);
    long long sum = 0;
    for (int t = 0; t != senders; ++t)
        for (int i = 0; i != per_sender; ++i)
            sum += t * 1000 + i;
    EXPECT_EQ(g_rp_sum.load(), sum);
}

// ---- reliability interaction ---------------------------------------------

reliability_params fast_reliability()
{
    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;
    return rel;
}

// Harness with the fault injector and the reliability layer on; the
// receiver keeps ONE worker so per-source ordering is observable.
struct lossy_pipeline_harness
{
    explicit lossy_pipeline_harness(fault_plan plan)
      : inner(2)
      , faulty(inner, plan)
      , sched0(pipeline_harness::make_cfg(1))
      , sched1(pipeline_harness::make_cfg(1))
      , ph0(0, faulty, sched0, fast_reliability())
      , ph1(1, faulty, sched1, fast_reliability())
    {
        reset_globals();
    }

    ~lossy_pipeline_harness()
    {
        settle();
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    [[nodiscard]] bool handlers_quiet()
    {
        return ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
            ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
            ph0.pending_reliability() == 0 && ph1.pending_reliability() == 0 &&
            sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0;
    }

    void settle()
    {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < 15000.0)
        {
            if (handlers_quiet() && faulty.in_flight() == 0)
            {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                if (handlers_quiet() && faulty.in_flight() == 0)
                    return;
            }
            if (handlers_quiet() && faulty.in_flight() != 0)
                faulty.drain();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "lossy pipeline harness did not settle";
    }

    loopback_transport inner;
    faulty_transport faulty;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
};

TEST(ReceivePipeline, DuplicateFramesSkipReceiveOverhead)
{
    fault_plan plan;
    plan.duplicate_probability = 1.0;
    lossy_pipeline_harness h(plan);

    constexpr int n = 50;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_parcel(1, 1));
    h.settle();

    EXPECT_EQ(g_rp_sum.load(), n);    // exactly once despite duplication
    auto const& c = h.ph1.counters();
    EXPECT_GT(c.duplicates_suppressed.load(), 0u);
    // The duplicate of a frame arrives right behind the original on this
    // single-worker receiver, so the prefix peek recognizes it before the
    // modeled receive overhead is paid.
    EXPECT_GT(c.duplicate_overhead_avoided.load(), 0u);
    EXPECT_LE(
        c.duplicate_overhead_avoided.load(), c.duplicates_suppressed.load());
}

TEST(ReceivePipeline, PerSourceOrderUnderDropsAndDuplicates)
{
    fault_plan plan;
    plan.drop_probability = 0.15;
    plan.duplicate_probability = 0.2;
    lossy_pipeline_harness h(plan);

    constexpr int n = 300;
    for (int i = 0; i != n; ++i)
        h.ph0.put_parcel(make_parcel(1, i));
    h.settle();

    std::lock_guard lock(g_rp_order_lock);
    ASSERT_EQ(g_rp_order.size(), static_cast<std::size_t>(n));
    for (int i = 0; i != n; ++i)
        EXPECT_EQ(g_rp_order[static_cast<std::size_t>(i)], i)
            << "out-of-order delivery at position " << i;
}

TEST(ReceivePipeline, HeldFramesReleaseInOrderAndChunked)
{
    // Pure reordering pressure: drops force retransmission, so later
    // frames routinely arrive while an earlier one is missing and must be
    // parked undecoded until the gap fills.
    fault_plan plan;
    plan.drop_probability = 0.3;
    lossy_pipeline_harness h(plan);

    constexpr int batches = 20;
    constexpr int batch_size = 30;
    for (int b = 0; b != batches; ++b)
        h.ph0.send_message(1, make_batch(1, b * batch_size, batch_size));
    h.settle();

    EXPECT_EQ(g_rp_count.load(), std::uint64_t(batches) * batch_size);
    {
        std::lock_guard lock(g_rp_order_lock);
        ASSERT_EQ(g_rp_order.size(), std::size_t(batches) * batch_size);
        for (std::size_t i = 0; i != g_rp_order.size(); ++i)
            EXPECT_EQ(g_rp_order[i], static_cast<int>(i));
    }
    EXPECT_EQ(h.ph1.counters().chunk_parcels.load(),
        std::uint64_t(batches) * batch_size);
    EXPECT_GT(h.ph0.counters().retransmits.load(), 0u);
}

}    // namespace
