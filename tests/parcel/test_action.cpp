// Action machinery: id hashing, registration, marshaling, invocation and
// response generation.

#include <coal/parcel/action.hpp>
#include <coal/parcel/action_registry.hpp>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

int test_add(int a, int b)
{
    return a + b;
}

std::string test_concat(std::string a, std::string b)
{
    return a + b;
}

int g_side_effect = 0;

void test_fire_and_forget(int x)
{
    g_side_effect = x;
}

}    // namespace

COAL_PLAIN_ACTION(test_add, test_add_action);
COAL_PLAIN_ACTION(test_concat, test_concat_action);
COAL_PLAIN_ACTION(test_fire_and_forget, test_fire_and_forget_action);

namespace {

using coal::parcel::action_registry;
using coal::parcel::hash_action_name;
using coal::parcel::invocation_context;
using coal::parcel::make_response_id;
using coal::parcel::parcel;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;
using coal::serialization::from_bytes;
using coal::serialization::input_archive;

TEST(ActionHash, DeterministicAndDistinct)
{
    EXPECT_EQ(hash_action_name("abc"), hash_action_name("abc"));
    EXPECT_NE(hash_action_name("abc"), hash_action_name("abd"));
    EXPECT_NE(hash_action_name("test_add_action"),
        hash_action_name("test_concat_action"));
}

TEST(ActionHash, ResponseIdIsInvolution)
{
    auto const id = hash_action_name("x");
    EXPECT_NE(make_response_id(id), id);
    EXPECT_EQ(make_response_id(make_response_id(id)), id);
}

TEST(Action, TraitsDeduceSignature)
{
    static_assert(
        std::is_same_v<test_add_action::result_type, int>);
    static_assert(std::is_same_v<test_add_action::args_tuple,
        std::tuple<int, int>>);
    static_assert(
        std::is_same_v<test_fire_and_forget_action::result_type, void>);
    SUCCEED();
}

TEST(Action, RegisteredAtStaticInit)
{
    auto const* entry =
        action_registry::instance().find_by_name("test_add_action");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->id, test_add_action::id());
    EXPECT_FALSE(entry->is_response);

    // The paired response action exists too.
    auto const* response = action_registry::instance().find(
        make_response_id(test_add_action::id()));
    ASSERT_NE(response, nullptr);
    EXPECT_TRUE(response->is_response);
    EXPECT_EQ(response->name, "test_add_action::response");
}

TEST(Action, ReRegistrationIsIdempotent)
{
    auto const id1 = test_add_action::ensure_registered();
    auto const id2 = test_add_action::ensure_registered();
    EXPECT_EQ(id1, id2);
}

TEST(ActionRegistry, FindUnknownGivesNull)
{
    EXPECT_EQ(action_registry::instance().find(0xdeadbeef), nullptr);
    EXPECT_EQ(action_registry::instance().find_by_name("nope"), nullptr);
}

TEST(ActionRegistry, NamesListsRegisteredActions)
{
    auto const names = action_registry::instance().action_names();
    EXPECT_NE(std::find(names.begin(), names.end(), "test_add_action"),
        names.end());
    // Response actions are filtered out.
    for (auto const& n : names)
        EXPECT_EQ(n.find("::response"), std::string::npos);
}

TEST(Action, MarshalUnmarshalInvoke)
{
    parcel p;
    p.source = 1;
    p.dest = 0;
    p.action = test_add_action::id();
    p.continuation = 0;    // fire and forget
    p.arguments = test_add_action::make_arguments(20, 22);

    invocation_context ctx;
    ctx.this_locality = 0;
    ctx.put_parcel = [](parcel&&) { ADD_FAILURE() << "no continuation"; };

    test_add_action::invoke(ctx, std::move(p));    // must not crash
}

TEST(Action, ContinuationProducesResponseParcel)
{
    parcel p;
    p.source = 3;
    p.dest = 0;
    p.action = test_add_action::id();
    p.continuation = 555;
    p.arguments = test_add_action::make_arguments(40, 2);

    parcel response;
    bool got_response = false;

    invocation_context ctx;
    ctx.this_locality = 0;
    ctx.put_parcel = [&](parcel&& r) {
        response = std::move(r);
        got_response = true;
    };

    test_add_action::invoke(ctx, std::move(p));
    ASSERT_TRUE(got_response);
    EXPECT_EQ(response.source, 0u);
    EXPECT_EQ(response.dest, 3u);    // back to the caller
    EXPECT_EQ(response.action, make_response_id(test_add_action::id()));
    EXPECT_EQ(response.continuation, 555u);
    EXPECT_EQ(from_bytes<int>(response.arguments), 42);
}

TEST(Action, ResponseInvokerCompletesPromise)
{
    parcel response;
    response.source = 0;
    response.dest = 3;
    response.action = make_response_id(test_add_action::id());
    response.continuation = 777;
    response.arguments = coal::serialization::to_bytes(int{99});

    std::uint64_t completed_id = 0;
    int completed_value = 0;

    invocation_context ctx;
    ctx.this_locality = 3;
    ctx.complete_promise = [&](std::uint64_t id, shared_buffer&& payload) {
        completed_id = id;
        completed_value = from_bytes<int>(payload);
    };

    auto const* entry = action_registry::instance().find(response.action);
    ASSERT_NE(entry, nullptr);
    entry->invoke(ctx, std::move(response));
    EXPECT_EQ(completed_id, 777u);
    EXPECT_EQ(completed_value, 99);
}

TEST(Action, StringArgumentsRoundTripThroughInvocation)
{
    parcel p;
    p.source = 0;
    p.dest = 0;
    p.action = test_concat_action::id();
    p.continuation = 1;
    p.arguments = test_concat_action::make_arguments(
        std::string("foo"), std::string("bar"));

    std::string result;
    invocation_context ctx;
    ctx.this_locality = 0;
    ctx.put_parcel = [&](parcel&& r) {
        result = from_bytes<std::string>(r.arguments);
    };

    test_concat_action::invoke(ctx, std::move(p));
    EXPECT_EQ(result, "foobar");
}

TEST(Action, VoidActionRunsAndSendsEmptyResponse)
{
    g_side_effect = 0;
    parcel p;
    p.source = 1;
    p.dest = 0;
    p.action = test_fire_and_forget_action::id();
    p.continuation = 9;
    p.arguments = test_fire_and_forget_action::make_arguments(31337);

    bool empty_response = false;
    invocation_context ctx;
    ctx.this_locality = 0;
    ctx.put_parcel = [&](parcel&& r) {
        empty_response = r.arguments.empty();
    };

    test_fire_and_forget_action::invoke(ctx, std::move(p));
    EXPECT_EQ(g_side_effect, 31337);
    EXPECT_TRUE(empty_response);
}

}    // namespace
