// Parcelhandler integration at the module level: routing (local vs
// remote), background send/receive progress, the response table, message
// handler diversion, and counters.  Uses the loopback transport so tests
// are timing-independent.

#include <coal/parcel/parcelhandler.hpp>

#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <atomic>

namespace {

std::atomic<int> g_ph_sum{0};

int ph_double(int x)
{
    g_ph_sum += x;
    return 2 * x;
}

}    // namespace

COAL_PLAIN_ACTION(ph_double, ph_double_action);

namespace {

using coal::net::loopback_transport;
using coal::parcel::message_handler;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;
using coal::serialization::from_bytes;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

// Two-locality harness over loopback.
struct harness
{
    harness()
      : transport(2)
      , sched0(make_cfg())
      , sched1(make_cfg())
      , ph0(0, transport, sched0)
      , ph1(1, transport, sched1)
    {
    }

    ~harness()
    {
        // Let schedulers drain before teardown.
        settle();
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config make_cfg()
    {
        scheduler_config cfg;
        cfg.num_workers = 1;
        cfg.idle_sleep_us = 50;
        return cfg;
    }

    // Wait until both sides are quiet.
    void settle()
    {
        for (int i = 0; i != 2000; ++i)
        {
            if (ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
                ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
                sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0)
            {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                if (ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
                    ph0.pending_receives() == 0 &&
                    ph1.pending_receives() == 0 &&
                    sched0.pending_tasks() == 0 &&
                    sched1.pending_tasks() == 0)
                    return;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "harness did not settle";
    }

    loopback_transport transport;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
};

parcel make_request(std::uint32_t dst, int arg, std::uint64_t continuation)
{
    parcel p;
    p.dest = dst;
    p.action = ph_double_action::id();
    p.continuation = continuation;
    p.arguments = ph_double_action::make_arguments(arg);
    return p;
}

TEST(Parcelhandler, RemoteFireAndForgetExecutes)
{
    harness h;
    g_ph_sum = 0;
    h.ph0.put_parcel(make_request(1, 21, 0));
    h.settle();
    EXPECT_EQ(g_ph_sum.load(), 21);
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(), 1u);
}

TEST(Parcelhandler, LocalParcelShortCircuits)
{
    harness h;
    g_ph_sum = 0;
    h.ph0.put_parcel(make_request(0, 5, 0));
    h.settle();
    EXPECT_EQ(g_ph_sum.load(), 5);
    // No wire traffic.
    EXPECT_EQ(h.transport.stats().messages_sent, 0u);
    EXPECT_EQ(h.ph0.counters().parcels_local.load(), 1u);
    EXPECT_EQ(h.ph0.counters().parcels_sent.load(), 0u);
}

TEST(Parcelhandler, ResponseCompletesRegisteredCallback)
{
    harness h;
    std::atomic<int> result{0};
    auto const id = h.ph0.register_response_callback(
        [&result](shared_buffer&& payload) {
            result = from_bytes<int>(payload);
        });
    EXPECT_EQ(h.ph0.pending_responses(), 1u);

    h.ph0.put_parcel(make_request(1, 50, id));
    h.settle();
    EXPECT_EQ(result.load(), 100);
    EXPECT_EQ(h.ph0.pending_responses(), 0u);
}

TEST(Parcelhandler, UnknownContinuationIsDroppedSafely)
{
    harness h;
    // Response arrives for a continuation id never registered.
    h.ph0.put_parcel(make_request(1, 1, 424242));
    h.settle();
    SUCCEED();
}

TEST(Parcelhandler, ManyRoundTripsConserveCounts)
{
    harness h;
    constexpr int n = 500;
    std::atomic<int> completed{0};
    g_ph_sum = 0;

    for (int i = 0; i != n; ++i)
    {
        auto const id = h.ph0.register_response_callback(
            [&completed](shared_buffer&&) { ++completed; });
        h.ph0.put_parcel(make_request(1, 1, id));
    }
    h.settle();

    EXPECT_EQ(completed.load(), n);
    EXPECT_EQ(g_ph_sum.load(), n);
    // n requests out of ph0, n responses out of ph1.
    EXPECT_EQ(h.ph0.counters().parcels_sent.load(), static_cast<unsigned>(n));
    EXPECT_EQ(h.ph1.counters().parcels_sent.load(), static_cast<unsigned>(n));
    EXPECT_EQ(
        h.ph1.counters().parcels_received.load(), static_cast<unsigned>(n));
    EXPECT_EQ(
        h.ph0.counters().parcels_received.load(), static_cast<unsigned>(n));
    EXPECT_EQ(h.transport.stats().messages_sent,
        static_cast<std::uint64_t>(2 * n));
}

// A message handler that batches everything until flush() — a miniature
// coalescer used to validate the diversion seam in isolation.
class batching_handler final : public message_handler
{
public:
    explicit batching_handler(parcelhandler& ph)
      : ph_(ph)
    {
    }

    void enqueue(parcel&& p) override
    {
        std::lock_guard lock(m_);
        queued_[p.dest].push_back(std::move(p));
    }

    void flush() override
    {
        std::unordered_map<std::uint32_t, std::vector<parcel>> batches;
        {
            std::lock_guard lock(m_);
            batches.swap(queued_);
        }
        for (auto& [dst, batch] : batches)
        {
            ++messages_;
            ph_.send_message(dst, std::move(batch));
        }
    }

    [[nodiscard]] std::size_t queued_parcels() const override
    {
        std::lock_guard lock(m_);
        std::size_t total = 0;
        for (auto const& [dst, q] : queued_)
            total += q.size();
        return total;
    }

    int messages_ = 0;

private:
    parcelhandler& ph_;
    mutable std::mutex m_;
    std::unordered_map<std::uint32_t, std::vector<parcel>> queued_;
};

TEST(Parcelhandler, MessageHandlerDivertsAndBatches)
{
    harness h;
    auto handler = std::make_shared<batching_handler>(h.ph0);
    h.ph0.set_message_handler(ph_double_action::id(), handler);

    g_ph_sum = 0;
    for (int i = 0; i != 10; ++i)
        h.ph0.put_parcel(make_request(1, 1, 0));

    // Held back: no wire messages yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(handler->queued_parcels(), 10u);
    EXPECT_EQ(h.transport.stats().messages_sent, 0u);

    h.ph0.flush_message_handlers();
    h.settle();

    EXPECT_EQ(g_ph_sum.load(), 10);
    EXPECT_EQ(handler->messages_, 1);
    // 10 parcels arrived in ONE wire message.
    EXPECT_EQ(h.transport.stats().messages_sent, 1u);
    EXPECT_EQ(h.ph1.counters().parcels_received.load(), 10u);

    // Removing the handler restores pass-through.
    h.ph0.set_message_handler(ph_double_action::id(), nullptr);
    h.ph0.put_parcel(make_request(1, 1, 0));
    h.settle();
    EXPECT_EQ(h.transport.stats().messages_sent, 2u);
}

TEST(Parcelhandler, CountersTrackBytes)
{
    harness h;
    h.ph0.put_parcel(make_request(1, 7, 0));
    h.settle();
    auto const& c0 = h.ph0.counters();
    auto const& c1 = h.ph1.counters();
    EXPECT_GT(c0.bytes_sent.load(), 0u);
    EXPECT_EQ(c0.bytes_sent.load(), c1.bytes_received.load());
    EXPECT_EQ(c0.messages_sent.load(), 1u);
    EXPECT_EQ(c1.messages_received.load(), 1u);
}

TEST(Parcelhandler, StopClosesQueues)
{
    harness h;
    h.ph0.stop();
    h.ph0.put_parcel(make_request(1, 3, 0));    // accepted but inert
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(h.transport.stats().messages_sent, 0u);
    h.ph0.stop();    // idempotent
}

}    // namespace
