// Overload/backpressure chaos soak (tsan target): multiple producer
// threads offer ~10x more bytes than the configured watermarks while the
// receiving link is blacked out and lossy.  The flow-control layer must
// keep pool memory bounded (peak resident <= the critical watermark),
// never deadlock, surface every parcel it refuses (shed or link_down),
// and deliver everything else exactly once after the pressure subsides.

#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace {

std::atomic<std::uint64_t> g_soak_count{0};
std::atomic<std::uint64_t> g_soak_bytes{0};

std::size_t soak_sink(std::string blob)
{
    g_soak_count.fetch_add(1);
    g_soak_bytes.fetch_add(blob.size());
    return blob.size();
}

}    // namespace

COAL_PLAIN_ACTION(soak_sink, soak_sink_action);

namespace {

using coal::pressure_state;
using coal::net::blackout_window;
using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::parcel::delivery_error;
using coal::parcel::flow_params;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::reliability_params;
using coal::serialization::buffer_pool;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

// 3000-byte payloads pack the pool's 4 KiB size class tightly, so slab
// capacity tracks offered bytes instead of inflating 4x past them.
constexpr std::size_t payload_bytes = 3000;
constexpr int producer_threads = 3;
constexpr int parcels_per_producer = 1000;

// ~9 MiB offered against a 3 MiB critical watermark while the link
// absorbs nothing: a 10x+ overload of everything downstream.
constexpr std::uint64_t pool_soft = 1u << 20;
constexpr std::uint64_t pool_critical = 3u << 20;
constexpr std::uint64_t pool_fallback_cap = 2u << 20;

flow_params soak_flow()
{
    flow_params flow;
    flow.enabled = true;
    flow.initial_window_bytes = 64 * 1024;
    flow.window_bytes = 128 * 1024;
    flow.min_window_bytes = 16 * 1024;
    flow.link_soft_bytes = 512 * 1024;
    flow.link_inflight_cap_bytes = 1536 * 1024;
    flow.starvation_trip_us = 50000;
    flow.pool_soft_bytes = pool_soft;
    flow.pool_critical_bytes = pool_critical;
    flow.pool_fallback_cap_bytes = pool_fallback_cap;
    return flow;
}

reliability_params soak_reliability()
{
    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;
    return rel;
}

TEST(OverloadSoak, BoundedMemoryNoDeadlockExactlyOnce)
{
    // Watermarks go on before any traffic; reset on every exit path so
    // the process-global pool cannot leak pressure into other binaries.
    struct watermark_guard
    {
        watermark_guard()
        {
            buffer_pool::global().set_watermarks(
                pool_soft, pool_critical, pool_fallback_cap);
        }
        ~watermark_guard()
        {
            buffer_pool::global().set_watermarks(0, 0, 0);
        }
    } marks;

    // Chaos: the forward link is dark for the first 400 ms (the stalled
    // receiver), and stays mildly lossy afterwards.
    fault_plan plan;
    plan.drop_probability = 0.02;
    plan.duplicate_probability = 0.02;
    blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.end_us = 400'000;
    plan.blackouts.push_back(w);

    loopback_transport inner(2);
    faulty_transport faulty(inner, plan);

    scheduler_config cfg;
    cfg.num_workers = 2;
    cfg.idle_sleep_us = 50;
    scheduler sched0(cfg), sched1(cfg);

    parcelhandler ph0(0, faulty, sched0, soak_reliability(), soak_flow());
    parcelhandler ph1(1, faulty, sched1, soak_reliability(), soak_flow());

    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> failed{0};
    ph0.set_delivery_error_handler([&](delivery_error err, parcel&&) {
        if (err == delivery_error::shed_overload)
            shed.fetch_add(1);
        else
            failed.fetch_add(1);
    });

    g_soak_count = 0;
    g_soak_bytes = 0;

    // Producers race put_parcel from plain threads, far faster than the
    // dark link drains (it doesn't).
    std::string const blob(payload_bytes, 'x');
    std::vector<std::thread> producers;
    producers.reserve(producer_threads);
    for (int t = 0; t != producer_threads; ++t)
    {
        producers.emplace_back([&] {
            for (int i = 0; i != parcels_per_producer; ++i)
            {
                parcel p;
                p.dest = 1;
                p.action = soak_sink_action::id();
                p.arguments = soak_sink_action::make_arguments(blob);
                ph0.put_parcel(std::move(p));
            }
        });
    }
    for (auto& t : producers)
        t.join();

    // No deadlock: everything still owed must drain once the blackout
    // ends and the breaker heals.  Generous deadline for tsan.
    auto const quiet = [&] {
        return ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
            ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
            ph0.pending_reliability() == 0 && ph1.pending_reliability() == 0 &&
            sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0;
    };
    coal::stopwatch deadline;
    bool settled = false;
    while (deadline.elapsed_ms() < 120'000.0)
    {
        if (quiet() && faulty.in_flight() == 0)
        {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            if (quiet() && faulty.in_flight() == 0)
            {
                settled = true;
                break;
            }
        }
        if (quiet() && faulty.in_flight() != 0)
            faulty.drain();
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    ASSERT_TRUE(settled) << "overload soak did not settle (deadlock?)";

    std::uint64_t const offered =
        std::uint64_t{producer_threads} * parcels_per_producer;
    std::uint64_t const delivered = g_soak_count.load();

    // Overload actually happened and was refused, not buffered.
    EXPECT_GT(shed.load(), 0u);
    EXPECT_EQ(ph0.counters().parcels_shed.load(), shed.load());
    EXPECT_EQ(ph0.counters().link_down_failures.load(), failed.load());
    EXPECT_GT(ph0.counters().sends_deferred.load(), 0u);

    // Every offered parcel is accounted for exactly once: delivered, shed
    // at admission, or failed as link_down.  Duplicates would overshoot,
    // losses undershoot.
    EXPECT_EQ(delivered + shed.load() + failed.load(), offered);
    EXPECT_EQ(ph1.counters().parcels_executed.load(), delivered);
    EXPECT_EQ(g_soak_bytes.load(), delivered * payload_bytes);

    // Bounded memory: the pool's resident high-water mark never crossed
    // the critical watermark (admission shedding kicks in one headroom
    // step below it).
    EXPECT_LE(
        buffer_pool::global().stats().resident_bytes_peak, pool_critical);

    // Pressure subsided with the backlog.
    EXPECT_EQ(ph0.current_pressure(), pressure_state::ok);
    EXPECT_EQ(buffer_pool::global().pressure(), pressure_state::ok);

    ph0.stop();
    ph1.stop();
    sched0.stop();
    sched1.stop();
}

}    // namespace
