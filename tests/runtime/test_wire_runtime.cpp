// Full-stack acceptance over the real socket parcelport: the runtime
// with transport=tcp/uds must behave exactly like the simulated wire —
// exactly-once parcel delivery through the reliability layer, wire
// corruption contained (CRC-dropped, counted, never executed, healed by
// retransmission), forced connection drops healed by reconnect WITHOUT
// a membership epoch bump, and the faulty_transport decorator composing
// over real sockets.
//
// Race-labeled: wire IO threads race workers and the corruption seams;
// the tsan preset runs this binary under ThreadSanitizer.

#include <coal/runtime/runtime.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/parcel/action.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace {

std::atomic<long long> g_sum{0};
std::atomic<long long> g_count{0};

void wire_accumulate(int value)
{
    g_sum += value;
    ++g_count;
}

void reset_accumulator()
{
    g_sum = 0;
    g_count = 0;
}

}    // namespace

COAL_PLAIN_ACTION(wire_accumulate, wire_accumulate_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;

runtime_config wire_config(std::string transport, std::uint32_t n = 3)
{
    runtime_config cfg;
    cfg.num_localities = n;
    cfg.workers_per_locality = 1;
    cfg.apply_coalescing_defaults = false;
    cfg.transport = std::move(transport);
    cfg.reliability.enabled = true;
    cfg.reliability.min_rto_us = 20000;
    cfg.socket.drain_timeout_ms = 1000;
    return cfg;
}

/// n parcels from every locality to every other; returns the expected
/// (count, sum) over all links.
std::pair<long long, long long> all_to_all(runtime& rt, int n)
{
    rt.run_everywhere([n](locality& here) {
        for (int i = 0; i != n; ++i)
            for (auto const dest : here.find_remote_localities())
                here.apply<wire_accumulate_action>(dest, i);
    });
    long long const links =
        static_cast<long long>(rt.num_localities()) *
        (rt.num_localities() - 1);
    long long const per_link_sum = static_cast<long long>(n) * (n - 1) / 2;
    return {links * n, links * per_link_sum};
}

TEST(WireRuntime, ExactlyOnceOverTcp)
{
    reset_accumulator();
    runtime rt(wire_config("tcp"));
    ASSERT_NE(rt.wire(), nullptr);

    auto const [expect_count, expect_sum] = all_to_all(rt, 500);
    rt.quiesce();

    EXPECT_EQ(g_count.load(), expect_count);
    EXPECT_EQ(g_sum.load(), expect_sum);

    auto const w = rt.wire()->wire_stats();
    EXPECT_GT(w.frames_sent, 0u);
    EXPECT_GT(w.bytes_received, 0u);
    EXPECT_EQ(w.crc_drops, 0u);
    EXPECT_EQ(w.handshake_failures, 0u);
    rt.stop();
}

TEST(WireRuntime, ExactlyOnceOverUds)
{
    reset_accumulator();
    runtime rt(wire_config("uds"));
    ASSERT_NE(rt.wire(), nullptr);

    auto const [expect_count, expect_sum] = all_to_all(rt, 500);
    rt.quiesce();

    EXPECT_EQ(g_count.load(), expect_count);
    EXPECT_EQ(g_sum.load(), expect_sum);
    rt.stop();
}

TEST(WireRuntime, CorruptionContainedAndHealedByRetransmit)
{
    // Bit-flipped frames on the real wire: the CRC check drops them
    // before the parcel layer ever sees a byte, the reliability layer
    // retransmits, and the sums come out exact — zero corrupted parcels
    // executed.
    reset_accumulator();
    runtime rt(wire_config("tcp"));
    ASSERT_NE(rt.wire(), nullptr);

    rt.wire()->debug_corrupt_payload(10);
    auto const [expect_count, expect_sum] = all_to_all(rt, 400);
    rt.quiesce();

    EXPECT_EQ(g_count.load(), expect_count);
    EXPECT_EQ(g_sum.load(), expect_sum);

    auto const w = rt.wire()->wire_stats();
    EXPECT_EQ(w.crc_drops, 10u);

    std::uint64_t retransmits = 0;
    for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
        retransmits +=
            rt.get_locality(i).parcels().counters().retransmits.load();
    EXPECT_GT(retransmits, 0u);

    EXPECT_EQ(rt.counters().query("/net/wire/count/crc-drops").value, 10.0);
    rt.stop();
}

TEST(WireRuntime, ConnectionDropHealsWithoutEpochBump)
{
    // A TCP connection dying is a *link* event, not a peer death:
    // reconnect must restore the flow under the same incarnation epoch
    // (crash+restart via the chaos API is what bumps epochs, PR 6).
    reset_accumulator();
    auto cfg = wire_config("tcp");
    cfg.membership.enabled = true;
    runtime rt(cfg);
    ASSERT_NE(rt.wire(), nullptr);

    std::vector<std::uint32_t> epochs_before;
    for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
        epochs_before.push_back(rt.get_locality(i).parcels().epoch());

    auto const [c1, s1] = all_to_all(rt, 200);
    rt.quiesce();
    EXPECT_EQ(g_count.load(), c1);

    // Cut every outbound connection, then drive more traffic through the
    // healed links.
    for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
        rt.wire()->debug_drop_connection(i);

    reset_accumulator();
    auto const [c2, s2] = all_to_all(rt, 200);
    rt.quiesce();

    EXPECT_EQ(g_count.load(), c2);
    EXPECT_EQ(g_sum.load(), s2);
    EXPECT_GE(rt.wire()->wire_stats().reconnects, 1u);

    // Same epochs: reconnect is not a restart.
    for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
        EXPECT_EQ(rt.get_locality(i).parcels().epoch(), epochs_before[i])
            << "locality " << i;
    rt.stop();
}

TEST(WireRuntime, FaultyDecoratorComposesOverTcp)
{
    // transport=tcp plus an active fault plan: the runtime wraps the
    // socket transport in faulty_transport, injected drops are healed by
    // the reliability layer, and delivery stays exactly-once — the
    // chaos/reliability machinery runs unchanged over real sockets.
    reset_accumulator();
    auto cfg = wire_config("tcp");
    cfg.faults.seed = 0x51dec4a5;
    cfg.faults.drop_probability = 0.02;
    runtime rt(cfg);
    ASSERT_NE(rt.wire(), nullptr);
    ASSERT_TRUE(rt.config().reliability.enabled);

    auto const [c, s] = all_to_all(rt, 400);
    rt.quiesce();

    EXPECT_EQ(g_count.load(), c);
    EXPECT_EQ(g_sum.load(), s);
    EXPECT_GT(rt.network().stats().drops_injected, 0u);
    rt.stop();
}

TEST(WireRuntime, WireCountersRegisteredAndLive)
{
    // Counters satellite: the /net/wire/* catalogue is registered, valid
    // and carries real traffic numbers on a tcp runtime.
    reset_accumulator();
    runtime rt(wire_config("tcp", 2));
    all_to_all(rt, 100);
    rt.quiesce();

    for (char const* name : {"/net/wire/count/bytes-sent",
             "/net/wire/count/bytes-received", "/net/wire/count/frames-sent",
             "/net/wire/count/frames-received", "/net/wire/count/connects",
             "/net/wire/count/accepts", "/net/wire/count/reconnects",
             "/net/wire/count/partial-write-resumptions",
             "/net/wire/count/partial-read-resumptions",
             "/net/wire/count/crc-drops", "/net/wire/count/desync-drops",
             "/net/wire/count/oversized-drops",
             "/net/wire/count/truncated-drops",
             "/net/wire/count/connect-failures",
             "/net/wire/count/accept-failures",
             "/net/wire/count/handshake-failures",
             "/net/wire/count/backlog-drops"})
    {
        auto const v = rt.counters().query(name);
        EXPECT_TRUE(v.valid) << name;
        EXPECT_GE(v.value, 0.0) << name;
    }

    EXPECT_GT(rt.counters().query("/net/wire/count/frames-sent").value, 0.0);
    EXPECT_GT(
        rt.counters().query("/net/wire/count/bytes-received").value, 0.0);
    EXPECT_GT(rt.counters().query("/net/wire/count/connects").value, 0.0);
    rt.stop();
}

TEST(WireRuntime, SimRuntimeReportsZeroWireCounters)
{
    // On the simulated transport the wire counters exist and read zero —
    // a stable catalogue regardless of transport selection.
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    cfg.pin_transport = true;    // this test is *about* the sim transport
    runtime rt(cfg);
    EXPECT_EQ(rt.wire(), nullptr);
    auto const v = rt.counters().query("/net/wire/count/frames-sent");
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.value, 0.0);
    rt.stop();
}

}    // namespace
