// Crash/rejoin chaos soak (tsan target): seeded locality kills and
// restarts in the middle of an all-to-all exchange.  The membership
// layer must (a) keep every sender's books balanced — confirmed +
// failed + shed == offered, with each refused parcel surfaced through
// the delivery-error handler under exactly one cause — (b) deliver
// exactly once between survivors and at most once everywhere (no
// replay across incarnation epochs), (c) leave no per-peer reliability
// state and no pool bytes behind for dead peers, and (d) settle without
// deadlock once everyone is back.
//
// The fault/kill schedule derives from one RNG seed that is printed on
// entry and overridable via COAL_FAULT_SEED, so any failure replays
// exactly.

#include <coal/runtime/runtime.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/parcel/action.hpp>
#include <coal/serialization/buffer_pool.hpp>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace {

constexpr std::uint32_t soak_n = 4;    // localities
constexpr std::uint32_t soak_rounds = 6;
constexpr std::uint32_t soak_per_round = 40;    // parcels per (src,dst) pair
constexpr std::uint32_t tags_per_pair = soak_rounds * soak_per_round;

std::array<std::atomic<std::uint64_t>, soak_n * soak_n> g_exec{};
std::array<std::atomic<std::uint8_t>, soak_n * soak_n * tags_per_pair> g_seen{};
std::atomic<std::uint64_t> g_dups{0};

std::uint32_t chaos_mark(std::uint32_t src, std::uint32_t dst,
    std::uint32_t tag)
{
    g_exec[src * soak_n + dst].fetch_add(1);
    // Tags beyond the soak's per-pair space (other tests reuse this
    // action) skip duplicate tracking.
    if (tag < tags_per_pair &&
        g_seen[(src * soak_n + dst) * tags_per_pair + tag].exchange(1) != 0)
        g_dups.fetch_add(1);
    return tag;
}

}    // namespace

COAL_PLAIN_ACTION(chaos_mark, chaos_mark_action);

namespace {

using coal::parcel::delivery_error;
using coal::parcel::parcel;
using coal::parcel::peer_status;
using coal::serialization::buffer_pool;

// splitmix64: derive independent kill-schedule decisions from the seed.
std::uint64_t mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

coal::runtime_config chaos_config(std::uint64_t seed)
{
    coal::runtime_config cfg;
    cfg.num_localities = soak_n;
    cfg.workers_per_locality = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    cfg.idle_sleep_us = 50;

    cfg.faults.seed = seed;
    cfg.faults.drop_probability = 0.02;
    cfg.faults.duplicate_probability = 0.01;

    cfg.reliability.enabled = true;
    cfg.reliability.ack_delay_us = 100;
    cfg.reliability.min_rto_us = 500;
    cfg.reliability.max_rto_us = 20000;

    // Flow control on so deferred-job fencing is exercised, with pool
    // watermarks far above what the small payloads can reach (this soak
    // is about crash accounting, not admission shedding).
    cfg.flow.enabled = true;
    cfg.flow.initial_window_bytes = 64 * 1024;
    cfg.flow.window_bytes = 256 * 1024;
    cfg.flow.min_window_bytes = 16 * 1024;
    cfg.flow.link_soft_bytes = 1u << 20;
    cfg.flow.link_inflight_cap_bytes = 4u << 20;
    cfg.flow.pool_soft_bytes = 16u << 20;
    cfg.flow.pool_critical_bytes = 32u << 20;
    cfg.flow.pool_fallback_cap_bytes = 16u << 20;

    // Compressed timescales: suspicion within ~15 ms of silence, death
    // at 150 ms, dead-peer rejoin probes every 10 ms.  min_dead is kept
    // far above any plausible scheduler stall so survivors never fence
    // each other even under tsan.
    cfg.membership.enabled = true;
    cfg.membership.heartbeat_interval_us = 5000;
    cfg.membership.probe_interval_us = 10000;
    cfg.membership.min_dead_us = 150000;
    return cfg;
}

TEST(ChaosSoak, KillsAndRejoinsPreserveAccounting)
{
    std::uint64_t const seed =
        coal::net::fault_plan::resolve_seed(0xC0A15EEDull);
    SCOPED_TRACE("replay with COAL_FAULT_SEED=" + std::to_string(seed));
    std::printf("chaos soak seed=%llu (set COAL_FAULT_SEED=%llu to replay)\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(seed));

    // Two victims, seed-chosen, killed and rejoined one after the other;
    // the other two localities are the survivors.
    std::uint32_t const victim_a = static_cast<std::uint32_t>(mix(seed) % soak_n);
    std::uint32_t const victim_b = (victim_a + 1 +
        static_cast<std::uint32_t>(mix(seed + 1) % (soak_n - 1))) % soak_n;
    ASSERT_NE(victim_a, victim_b);
    auto const is_victim = [&](std::uint32_t l) {
        return l == victim_a || l == victim_b;
    };

    for (auto& e : g_exec)
        e.store(0);
    for (auto& e : g_seen)
        e.store(0);
    g_dups.store(0);

    auto const pool_baseline = buffer_pool::global().stats().resident_bytes;

    std::array<std::atomic<std::uint64_t>, soak_n * soak_n> offered{};
    std::array<std::atomic<std::uint64_t>, soak_n * soak_n> failed{};
    std::array<std::atomic<std::uint64_t>, soak_n * soak_n> shed{};
    std::array<std::atomic<std::uint64_t>, soak_n> link_down_total{};
    std::array<std::atomic<std::uint64_t>, soak_n> peer_failed_total{};

    coal::runtime rt(chaos_config(seed));
    rt.enable_coalescing(chaos_mark_action::name(), {16, 500});
    for (std::uint32_t s = 0; s != soak_n; ++s)
    {
        rt.get_locality(s).parcels().set_delivery_error_handler(
            [&, s](delivery_error err, parcel&& p) {
                auto const pair = s * soak_n + p.dest;
                switch (err)
                {
                case delivery_error::shed_overload:
                    shed[pair].fetch_add(1);
                    break;
                case delivery_error::link_down:
                    failed[pair].fetch_add(1);
                    link_down_total[s].fetch_add(1);
                    break;
                case delivery_error::peer_failed:
                    failed[pair].fetch_add(1);
                    peer_failed_total[s].fetch_add(1);
                    break;
                }
            });
    }

    // One all-to-all burst: every locality offers soak_per_round parcels
    // to every other, racing whatever chaos the round schedules.
    auto burst = [&](std::uint32_t round) {
        std::vector<std::thread> senders;
        senders.reserve(soak_n);
        for (std::uint32_t s = 0; s != soak_n; ++s)
        {
            senders.emplace_back([&, s] {
                for (std::uint32_t k = 0; k != soak_per_round; ++k)
                {
                    for (std::uint32_t d = 0; d != soak_n; ++d)
                    {
                        if (d == s)
                            continue;
                        std::uint32_t const tag = round * soak_per_round + k;
                        rt.get_locality(s).apply<chaos_mark_action>(
                            coal::agas::locality_id{d}, s, d, tag);
                        offered[s * soak_n + d].fetch_add(1);
                    }
                }
            });
        }
        for (auto& t : senders)
            t.join();
    };

    // Everyone (still) alive in everyone else's verdict?
    auto all_alive = [&] {
        for (std::uint32_t i = 0; i != soak_n; ++i)
            for (std::uint32_t j = 0; j != soak_n; ++j)
                if (i != j &&
                    rt.get_locality(i).parcels().peer_liveness(j) !=
                        peer_status::alive)
                    return false;
        return true;
    };
    auto wait_all_alive = [&](char const* when) {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < 30000.0)
        {
            if (all_alive())
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ADD_FAILURE() << "membership never converged to all-alive " << when;
        return false;
    };

    // Round 0: clean all-to-all so every pair has contact (and the
    // failure detectors have interarrival history).
    burst(0);

    // Round 1: victim A dies mid-burst.  Senders keep offering; the
    // backlog toward A fails as peer_failed once the detector fences it.
    {
        std::thread killer([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            rt.kill_locality(victim_a);
        });
        burst(1);
        killer.join();
    }
    // Let the death verdict land everywhere (min_dead + slack).
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    // Round 2: traffic toward a confirmed-dead peer fast-fails; the
    // crashed locality refuses its own puts the same way.
    burst(2);

    // Rejoin A under a fresh epoch; probes rediscover it.
    rt.restart_locality(victim_a);
    ASSERT_TRUE(wait_all_alive("after victim A rejoined"));

    // Rounds 3-4: same dance for victim B.
    {
        std::thread killer([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            rt.kill_locality(victim_b);
        });
        burst(3);
        killer.join();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    burst(4);
    rt.restart_locality(victim_b);
    ASSERT_TRUE(wait_all_alive("after victim B rejoined"));

    // Round 5: fully healed — coalesced all-to-all resumes everywhere.
    burst(5);

    rt.quiesce();

    // --- sender-side conservation: every offered parcel is in exactly
    // one bucket (confirmed by ack, failed through the handler, shed).
    for (std::uint32_t s = 0; s != soak_n; ++s)
    {
        auto const& c = rt.get_locality(s).parcels().counters();
        std::uint64_t off = 0, fail = 0, sh = 0;
        for (std::uint32_t d = 0; d != soak_n; ++d)
        {
            off += offered[s * soak_n + d].load();
            fail += failed[s * soak_n + d].load();
            sh += shed[s * soak_n + d].load();
        }
        EXPECT_EQ(c.parcels_confirmed.load() + fail + sh, off)
            << "conservation broken on sender " << s;
        // The per-cause counters must agree with what the handler saw.
        EXPECT_EQ(c.parcels_shed.load(), sh) << "sender " << s;
        EXPECT_EQ(c.link_down_failures.load(), link_down_total[s].load())
            << "sender " << s;
        EXPECT_EQ(c.peer_failed_failures.load(), peer_failed_total[s].load())
            << "sender " << s;
    }

    // --- delivery semantics: at-most-once everywhere (epoch fencing
    // blocks cross-incarnation replay), exactly-once between survivors.
    // With a forced topology (COAL_FORCE_NUM_NODES) a survivor pair's
    // parcels may transit a victim *relay*: once the relay acks custody
    // the origin counts them confirmed, and the relay's death loses them
    // into /coal/hierarchy/relay-failed — the documented at-most-once
    // window of the relay hop.  The per-pair law then weakens to a
    // cluster-wide one: the deficit across all pairs is bounded by the
    // custody losses the relays recorded.
    bool const topo_forced = std::getenv("COAL_FORCE_NUM_NODES") != nullptr;
    EXPECT_EQ(g_dups.load(), 0u) << "a parcel executed twice";
    std::uint64_t all_offered = 0, all_settled = 0, relay_failed = 0;
    for (std::uint32_t s = 0; s != soak_n; ++s)
    {
        relay_failed +=
            rt.get_locality(s).parcels().counters().parcels_relay_failed.load();
        for (std::uint32_t d = 0; d != soak_n; ++d)
        {
            if (s == d)
                continue;
            auto const pair = s * soak_n + d;
            EXPECT_LE(g_exec[pair].load(), offered[pair].load())
                << "pair " << s << "->" << d;
            if (!is_victim(s) && !is_victim(d))
            {
                auto const settled = g_exec[pair].load() +
                    failed[pair].load() + shed[pair].load();
                all_offered += offered[pair].load();
                all_settled += settled;
                if (!topo_forced)
                {
                    EXPECT_EQ(settled, offered[pair].load())
                        << "survivor pair " << s << "->" << d;
                }
            }
        }
    }
    if (topo_forced)
    {
        EXPECT_LE(all_settled, all_offered);
        EXPECT_GE(all_settled + relay_failed, all_offered)
            << "survivor-pair deficit exceeds recorded relay custody losses";
    }

    // --- chaos actually happened and was recovered from.
    for (std::uint32_t s = 0; s != soak_n; ++s)
    {
        if (is_victim(s))
            continue;
        auto const& c = rt.get_locality(s).parcels().counters();
        EXPECT_GE(c.peers_declared_dead.load(), 1u) << "survivor " << s;
        EXPECT_GE(c.peer_rejoins.load(), 1u) << "survivor " << s;
    }

    // --- no per-peer reliability/flow state left anywhere.
    for (std::uint32_t i = 0; i != soak_n; ++i)
    {
        for (std::uint32_t j = 0; j != soak_n; ++j)
        {
            if (i == j)
                continue;
            auto const dbg = rt.get_locality(i).parcels().debug_peer(j);
            EXPECT_EQ(dbg.unacked_frames, 0u) << i << "->" << j;
            EXPECT_EQ(dbg.held_frames, 0u) << i << "->" << j;
            EXPECT_EQ(dbg.deferred_jobs, 0u) << i << "->" << j;
            EXPECT_EQ(dbg.unacked_bytes, 0u) << i << "->" << j;
            EXPECT_EQ(dbg.deferred_bytes, 0u) << i << "->" << j;
        }
    }

    rt.stop();

    // --- no pool bytes leaked: every slab a fenced frame held has been
    // released (free-listed slabs are excluded from resident_bytes).
    EXPECT_EQ(buffer_pool::global().stats().resident_bytes, pool_baseline);
}

// Satellite of the failure model: a blackout long enough to trip the
// breaker and the suspicion score, but shorter than the death floor,
// must heal completely — no peer_failed verdict, and coalesced batching
// (not the degraded-link bypass) carrying traffic again afterwards.
TEST(ChaosSoak, ShortBlackoutHealsAndRestoresBatching)
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.workers_per_locality = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    cfg.idle_sleep_us = 50;
    cfg.reliability.enabled = true;
    cfg.reliability.ack_delay_us = 100;
    cfg.reliability.min_rto_us = 500;
    cfg.reliability.max_rto_us = 20000;
    cfg.membership.enabled = true;
    cfg.membership.heartbeat_interval_us = 2000;
    cfg.membership.probe_interval_us = 10000;
    cfg.membership.min_dead_us = 400000;    // blackout stays well below

    // Both directions dark for the first 60 ms.
    for (std::uint32_t src : {0u, 1u})
    {
        coal::net::blackout_window w;
        w.src = src;
        w.dst = 1 - src;
        w.end_us = 60'000;
        cfg.faults.blackouts.push_back(w);
    }

    for (auto& e : g_exec)
        e.store(0);
    for (auto& e : g_seen)
        e.store(0);
    g_dups.store(0);

    coal::runtime rt(cfg);
    rt.enable_coalescing(chaos_mark_action::name(), {32, 1000});

    std::atomic<std::uint64_t> errors{0};
    rt.get_locality(0).parcels().set_delivery_error_handler(
        [&](delivery_error, parcel&&) { errors.fetch_add(1); });

    auto& ph0 = rt.get_locality(0).parcels();

    // One parcel into the dark window: locality 0 now knows peer 1,
    // hears nothing, and must escalate to suspected (degrading the link
    // for the coalescing layer) without ever declaring death.
    rt.get_locality(0).apply<chaos_mark_action>(
        coal::agas::locality_id{1}, 0u, 1u, 0u);
    coal::stopwatch deadline;
    while (ph0.peer_liveness(1) != peer_status::suspected &&
        deadline.elapsed_ms() < 20000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(ph0.peer_liveness(1), peer_status::suspected);
    EXPECT_TRUE(ph0.link_degraded(1));

    // The blackout ends, retransmits land, and the verdict heals.
    while ((ph0.peer_liveness(1) != peer_status::alive ||
               ph0.link_degraded(1)) &&
        deadline.elapsed_ms() < 20000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(ph0.peer_liveness(1), peer_status::alive);
    ASSERT_FALSE(ph0.link_degraded(1));

    // Batching must be fully restored: far fewer wire messages than
    // parcels (the degraded-link bypass would send one message each).
    constexpr std::uint32_t parcels = 400;
    auto const messages_before = rt.network().stats().messages_sent;
    for (std::uint32_t k = 0; k != parcels; ++k)
        rt.get_locality(0).apply<chaos_mark_action>(
            coal::agas::locality_id{1}, 0u, 1u, 1u + k);
    rt.quiesce();
    auto const messages_delta =
        rt.network().stats().messages_sent - messages_before;

    EXPECT_EQ(g_exec[0 * soak_n + 1].load(), parcels + 1);
    EXPECT_LT(messages_delta, parcels)
        << "coalesced batching did not resume after the blackout healed";
    EXPECT_EQ(ph0.counters().peers_declared_dead.load(), 0u);
    EXPECT_EQ(ph0.counters().peer_failed_failures.load(), 0u);
    EXPECT_EQ(errors.load(), 0u);

    rt.stop();
}

}    // namespace
