// The performance-counter framework wired to live subsystems: every
// registered counter type must resolve, count real traffic, aggregate
// across localities and honour reset-on-read.

#include <coal/runtime/runtime.hpp>

#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace {

int ci_echo(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(ci_echo, ci_echo_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;

runtime_config loopback()
{
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

void round_trips(runtime& rt, int n)
{
    rt.run_on(0, [n](locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<int>> futures;
        for (int i = 0; i != n; ++i)
            futures.push_back(here.async<ci_echo_action>(other, i));
        coal::threading::wait_all(futures);
    });
}

TEST(CountersIntegration, DiscoverListsAllBuiltinTypes)
{
    runtime rt(loopback());
    auto const types = rt.counters().discover();

    auto has = [&](std::string const& path) {
        for (auto const& [p, d] : types)
        {
            if (p == path)
                return true;
        }
        return false;
    };

    // The paper's counters:
    EXPECT_TRUE(has("/coalescing/count/parcels"));
    EXPECT_TRUE(has("/coalescing/count/messages"));
    EXPECT_TRUE(has("/coalescing/count/average-parcels-per-message"));
    EXPECT_TRUE(has("/coalescing/time/average-parcel-arrival"));
    EXPECT_TRUE(has("/coalescing/time/parcel-arrival-histogram"));
    EXPECT_TRUE(has("/threads/time/average-overhead"));
    EXPECT_TRUE(has("/threads/background-work"));
    EXPECT_TRUE(has("/threads/background-overhead"));
    // Supporting counters:
    EXPECT_TRUE(has("/threads/count/cumulative"));
    EXPECT_TRUE(has("/parcels/count/sent"));
    EXPECT_TRUE(has("/messages/count/sent"));
    EXPECT_TRUE(has("/data/count/sent"));
    EXPECT_TRUE(has("/timers/count/fired"));
    // Batched receive pipeline:
    EXPECT_TRUE(has("/threads/receive-pipeline/count/drains"));
    EXPECT_TRUE(has("/threads/receive-pipeline/count/frames"));
    EXPECT_TRUE(has("/threads/receive-pipeline/count/chunks"));
    EXPECT_TRUE(has("/threads/receive-pipeline/frames-per-drain"));
    EXPECT_TRUE(has("/threads/receive-pipeline/chunk-occupancy"));
    EXPECT_TRUE(has("/threads/receive-pipeline/time/offloaded-decode"));
    EXPECT_TRUE(has("/net/count/duplicate-overhead-avoided"));
    rt.stop();
}

TEST(CountersIntegration, ReceivePipelineCountersTrackTraffic)
{
    runtime rt(loopback());
    round_trips(rt, 200);
    rt.quiesce();

    auto& c = rt.counters();
    // Every remote message goes through a drain; uncoalesced traffic is
    // one parcel per frame, so chunks == frames here.
    double const drains =
        c.query("/threads/receive-pipeline/count/drains").value;
    double const frames =
        c.query("/threads/receive-pipeline/count/frames").value;
    double const chunks =
        c.query("/threads/receive-pipeline/count/chunks").value;
    EXPECT_GT(drains, 0.0);
    EXPECT_DOUBLE_EQ(frames, 400.0);    // 200 requests + 200 responses
    EXPECT_DOUBLE_EQ(chunks, 400.0);    // 1 parcel per frame -> 1 chunk
    EXPECT_GE(frames, drains);
    EXPECT_DOUBLE_EQ(
        c.query("/threads/receive-pipeline/chunk-occupancy").value, 1.0);
    EXPECT_GE(c.query("/threads/receive-pipeline/frames-per-drain").value, 1.0);
    rt.stop();
}

TEST(CountersIntegration, ParcelsSentCountsTraffic)
{
    runtime rt(loopback());
    round_trips(rt, 100);
    rt.quiesce();

    // 100 requests from locality 0 + 100 responses from locality 1.
    EXPECT_DOUBLE_EQ(rt.counters().query("/parcels/count/sent").value, 200.0);
    EXPECT_DOUBLE_EQ(
        rt.counters().query("/parcels{locality#0}/count/sent").value, 100.0);
    EXPECT_DOUBLE_EQ(
        rt.counters().query("/parcels{locality#1}/count/sent").value, 100.0);
    EXPECT_DOUBLE_EQ(
        rt.counters().query("/parcels/count/received").value, 200.0);
    rt.stop();
}

TEST(CountersIntegration, MessageAndDataCountersConsistent)
{
    runtime rt(loopback());
    round_trips(rt, 50);
    rt.quiesce();

    auto& c = rt.counters();
    double const sent = c.query("/messages/count/sent").value;
    double const received = c.query("/messages/count/received").value;
    EXPECT_DOUBLE_EQ(sent, received);
    EXPECT_DOUBLE_EQ(sent, 100.0);    // uncoalesced: 1 parcel per message

    EXPECT_DOUBLE_EQ(c.query("/data/count/sent").value,
        c.query("/data/count/received").value);
    EXPECT_GT(c.query("/data/count/sent").value, 0.0);
    rt.stop();
}

TEST(CountersIntegration, ThreadCountersReflectTasks)
{
    runtime rt(loopback());
    round_trips(rt, 100);
    rt.quiesce();

    auto& c = rt.counters();
    EXPECT_GT(c.query("/threads/count/cumulative").value, 200.0);
    EXPECT_GT(c.query("/threads/time/func").value, 0.0);
    EXPECT_GE(c.query("/threads/time/func").value,
        c.query("/threads/time/exec").value);
    EXPECT_GE(c.query("/threads/time/average-overhead").value, 0.0);
    rt.stop();
}

TEST(CountersIntegration, UnknownLocalityInstanceInvalid)
{
    runtime rt(loopback());
    EXPECT_FALSE(
        rt.counters().query("/parcels{locality#9}/count/sent").valid);
    rt.stop();
}

TEST(CountersIntegration, CoalescingCountersNeedKnownAction)
{
    runtime rt(loopback());
    EXPECT_FALSE(rt.counters().query("/coalescing/count/parcels").valid);
    EXPECT_FALSE(
        rt.counters().query("/coalescing/count/parcels@never_enabled").valid);
    rt.stop();
}

TEST(CountersIntegration, CoalescingCountersCountPerAction)
{
    runtime rt(loopback());
    rt.enable_coalescing("ci_echo_action", {16, 2000});
    round_trips(rt, 160);
    rt.quiesce();

    auto& c = rt.counters();
    std::string const a = "@ci_echo_action";
    // Requests and responses both pass coalescing handlers: 320 parcels.
    EXPECT_DOUBLE_EQ(
        c.query("/coalescing/count/parcels" + a).value, 320.0);
    double const messages =
        c.query("/coalescing/count/messages" + a).value;
    EXPECT_GE(messages, 20.0);
    EXPECT_LE(messages, 60.0);    // ~320/16 plus partial flushes
    double const ppm =
        c.query("/coalescing/count/average-parcels-per-message" + a).value;
    EXPECT_GT(ppm, 4.0);
    EXPECT_LE(ppm, 16.0);
    EXPECT_GT(
        c.query("/coalescing/time/average-parcel-arrival" + a).value, 0.0);

    auto const histogram =
        c.query("/coalescing/time/parcel-arrival-histogram" + a);
    ASSERT_TRUE(histogram.valid);
    ASSERT_GT(histogram.values.size(), 3u);
    std::int64_t gaps = 0;
    for (std::size_t i = 3; i < histogram.values.size(); ++i)
        gaps += histogram.values[i];
    // 320 parcels counted per locality; gaps ≈ parcels - localities.
    EXPECT_GE(gaps, 300);
    rt.stop();
}

TEST(CountersIntegration, PerLocalityCoalescingInstanceSelectsOne)
{
    runtime rt(loopback());
    rt.enable_coalescing("ci_echo_action", {8, 2000});
    round_trips(rt, 80);
    rt.quiesce();

    auto& c = rt.counters();
    double const l0 = c.query(
                           "/coalescing{locality#0}/count/parcels@"
                           "ci_echo_action")
                          .value;
    double const l1 = c.query(
                           "/coalescing{locality#1}/count/parcels@"
                           "ci_echo_action")
                          .value;
    double const total =
        c.query("/coalescing/count/parcels@ci_echo_action").value;
    EXPECT_DOUBLE_EQ(l0 + l1, total);
    EXPECT_DOUBLE_EQ(l0, 80.0);    // requests at 0
    EXPECT_DOUBLE_EQ(l1, 80.0);    // responses at 1
    rt.stop();
}

TEST(CountersIntegration, ResetOnReadGivesPerPhaseValues)
{
    runtime rt(loopback());
    round_trips(rt, 30);
    rt.quiesce();

    auto& c = rt.counters();
    double const phase1 = c.query("/parcels/count/sent", true).value;
    EXPECT_DOUBLE_EQ(phase1, 60.0);
    EXPECT_DOUBLE_EQ(c.query("/parcels/count/sent").value, 0.0);

    round_trips(rt, 10);
    rt.quiesce();
    EXPECT_DOUBLE_EQ(c.query("/parcels/count/sent").value, 20.0);
    rt.stop();
}

TEST(CountersIntegration, BackgroundOverheadBetweenZeroAndOne)
{
    runtime_config cfg;    // sim network: real background costs
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    runtime rt(cfg);
    round_trips(rt, 200);
    rt.quiesce();

    double const overhead =
        rt.counters().query("/threads/background-overhead").value;
    EXPECT_GT(overhead, 0.0);
    EXPECT_LT(overhead, 1.0);
    EXPECT_GT(rt.counters().query("/threads/background-work").value, 0.0);
    rt.stop();
}

TEST(CountersIntegration, PoolCountersObserveRealTraffic)
{
    runtime rt(loopback());
    auto& c = rt.counters();
    // Baseline first: the pool is process-global and other activity in
    // this process (runtime construction, earlier phases) already used it.
    double const hits0 = c.query("/coal/pool/count/hits").value;
    double const misses0 = c.query("/coal/pool/count/misses").value;
    double const referenced0 = c.query("/coal/pool/data/referenced").value;

    round_trips(rt, 200);
    rt.quiesce();

    // Every encode acquires a head slab and every decode borrows views,
    // so traffic must move the acquire counters...
    double const acquires = (c.query("/coal/pool/count/hits").value - hits0) +
        (c.query("/coal/pool/count/misses").value - misses0);
    EXPECT_GT(acquires, 0.0);
    // ...and receive-side argument views are refcount shares, not copies.
    EXPECT_GT(c.query("/coal/pool/data/referenced").value, referenced0);
    EXPECT_GE(c.query("/coal/pool/count/outstanding").value, 0.0);
    EXPECT_GE(c.query("/coal/pool/count/heap-fallbacks").value, 0.0);
    rt.stop();
}

TEST(CountersIntegration, PoolCountersListedInDiscovery)
{
    runtime rt(loopback());
    auto const types = rt.counters().discover();
    auto has = [&](std::string const& path) {
        for (auto const& [p, d] : types)
        {
            if (p == path)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has("/coal/pool/count/hits"));
    EXPECT_TRUE(has("/coal/pool/count/misses"));
    EXPECT_TRUE(has("/coal/pool/count/heap-fallbacks"));
    EXPECT_TRUE(has("/coal/pool/count/flattens"));
    EXPECT_TRUE(has("/coal/pool/count/outstanding"));
    EXPECT_TRUE(has("/coal/pool/data/copied"));
    EXPECT_TRUE(has("/coal/pool/data/referenced"));
    rt.stop();
}

TEST(CountersIntegration, FlowCountersListedInDiscovery)
{
    runtime rt(loopback());
    auto const types = rt.counters().discover();
    auto has = [&](std::string const& path) {
        for (auto const& [p, d] : types)
        {
            if (p == path)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has("/net/flow/count/shed"));
    EXPECT_TRUE(has("/net/flow/count/deferrals"));
    EXPECT_TRUE(has("/net/flow/count/releases"));
    EXPECT_TRUE(has("/net/flow/count/credit-updates"));
    EXPECT_TRUE(has("/net/flow/count/link-down"));
    EXPECT_TRUE(has("/net/flow/count/pressure-transitions"));
    EXPECT_TRUE(has("/net/flow/count/starvation-trips"));
    EXPECT_TRUE(has("/net/flow/pressure"));
    EXPECT_TRUE(has("/coal/pool/resident-bytes"));
    EXPECT_TRUE(has("/coal/pool/resident-bytes-peak"));
    EXPECT_TRUE(has("/coal/pool/fallback-bytes"));
    EXPECT_TRUE(has("/coal/pool/fallback-bytes-peak"));
    EXPECT_TRUE(has("/coal/pool/count/fallback-cap-hits"));
    rt.stop();
}

// Flow control live: a small credit window makes real traffic defer and
// release, credits flow back on acks, and a low soft watermark makes the
// pressure gauge move (transitions are counted and traced).
TEST(CountersIntegration, FlowCountersObserveBackpressure)
{
    runtime_config cfg = loopback();
    cfg.flow.enabled = true;
    cfg.flow.initial_window_bytes = 256;
    cfg.flow.window_bytes = 512;
    cfg.flow.min_window_bytes = 256;
    cfg.flow.pool_soft_bytes = 1;    // any live slab counts as soft pressure
    cfg.flow.pool_critical_bytes = 64u << 20;    // never critical: no shedding
    runtime rt(cfg);

    round_trips(rt, 300);
    rt.quiesce();

    auto& c = rt.counters();
    double const deferrals = c.query("/net/flow/count/deferrals").value;
    EXPECT_GT(deferrals, 0.0);
    // Nothing failed, so every deferral was eventually released.
    EXPECT_DOUBLE_EQ(c.query("/net/flow/count/releases").value, deferrals);
    EXPECT_GT(c.query("/net/flow/count/credit-updates").value, 0.0);
    EXPECT_GT(c.query("/net/flow/count/pressure-transitions").value, 0.0);
    EXPECT_DOUBLE_EQ(c.query("/net/flow/count/shed").value, 0.0);
    EXPECT_DOUBLE_EQ(c.query("/net/flow/count/link-down").value, 0.0);

    auto const pressure = c.query("/net/flow/pressure");
    ASSERT_TRUE(pressure.valid);
    EXPECT_LT(pressure.value, 2.0);    // never critical in this test

    EXPECT_GE(c.query("/coal/pool/resident-bytes-peak").value,
        c.query("/coal/pool/resident-bytes").value);
    rt.stop();
}

TEST(CountersIntegration, HealthCountersListedInDiscovery)
{
    runtime rt(loopback());
    auto const types = rt.counters().discover();
    auto has = [&](std::string const& path) {
        for (auto const& [p, d] : types)
        {
            if (p == path)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has("/net/health/count/heartbeats"));
    EXPECT_TRUE(has("/net/health/count/suspected"));
    EXPECT_TRUE(has("/net/health/count/deaths"));
    EXPECT_TRUE(has("/net/health/count/rejoins"));
    EXPECT_TRUE(has("/net/health/count/stale-epoch-frames"));
    EXPECT_TRUE(has("/net/health/count/refutes"));
    EXPECT_TRUE(has("/net/health/count/confirmed-parcels"));
    EXPECT_TRUE(has("/net/health/known-peers"));
    EXPECT_TRUE(has("/net/health/suspected-peers"));
    EXPECT_TRUE(has("/net/health/dead-peers"));
    EXPECT_TRUE(has("/net/count/delivery-errors/shed-overload"));
    EXPECT_TRUE(has("/net/count/delivery-errors/link-down"));
    EXPECT_TRUE(has("/net/count/delivery-errors/peer-failed"));
    rt.stop();
}

// Membership live: a kill/rejoin cycle must move every /net/health
// counter and the delivery-error taxonomy the way the failure model
// promises.
TEST(CountersIntegration, HealthCountersObserveKillAndRejoin)
{
    runtime_config cfg = loopback();
    cfg.membership.enabled = true;
    cfg.membership.heartbeat_interval_us = 2000;
    cfg.membership.probe_interval_us = 10000;
    cfg.membership.min_dead_us = 50000;
    runtime rt(cfg);
    auto& c = rt.counters();

    // Deadline-bounded spin on a counter predicate (membership verdicts
    // need real time to accrue).
    auto wait_counter = [&](char const* path, auto pred, char const* what) {
        auto const deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(20);
        while (std::chrono::steady_clock::now() < deadline)
        {
            if (pred(c.query(path).value))
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        FAIL() << "timed out waiting for " << what << " on " << path;
    };

    round_trips(rt, 10);    // contact + acked (confirmed) parcels

    rt.kill_locality(1);
    constexpr double offered_at_dead = 10.0;
    for (int i = 0; i != static_cast<int>(offered_at_dead); ++i)
        rt.get_locality(0).apply<ci_echo_action>(coal::agas::locality_id{1}, i);

    wait_counter("/net/health/dead-peers",
        [](double v) { return v >= 1.0; }, "death verdict");
    wait_counter("/net/count/delivery-errors/peer-failed",
        [](double v) { return v >= offered_at_dead; }, "fenced parcels");
    EXPECT_GE(c.query("/net/health/count/suspected").value, 1.0);
    EXPECT_GE(c.query("/net/health/count/deaths").value, 1.0);

    rt.restart_locality(1);
    wait_counter("/net/health/count/rejoins",
        [](double v) { return v >= 1.0; }, "rejoin");
    wait_counter("/net/health/dead-peers",
        [](double v) { return v == 0.0; }, "dead gauge cleared");

    round_trips(rt, 5);    // the rejoined incarnation carries traffic
    rt.quiesce();

    EXPECT_GT(c.query("/net/health/count/heartbeats").value, 0.0);
    EXPECT_GT(c.query("/net/health/count/confirmed-parcels").value, 0.0);
    // The rejoin probes address the next incarnation, which is the epoch
    // the genuine restart came back under — no refutation is involved.
    EXPECT_DOUBLE_EQ(c.query("/net/health/count/refutes").value, 0.0);
    EXPECT_GE(c.query("/net/health/known-peers").value, 1.0);
    EXPECT_DOUBLE_EQ(c.query("/net/health/suspected-peers").value, 0.0);
    // Taxonomy: everything refused in this test was refused as
    // peer_failed — never shed, never link_down.
    EXPECT_DOUBLE_EQ(
        c.query("/net/count/delivery-errors/shed-overload").value, 0.0);
    EXPECT_DOUBLE_EQ(
        c.query("/net/count/delivery-errors/link-down").value, 0.0);
    rt.stop();
}

TEST(CountersIntegration, TimerCountersTrackFlushTimers)
{
    runtime rt(loopback());
    rt.enable_coalescing("ci_echo_action", {1000, 500});    // never fills
    round_trips(rt, 20);
    rt.quiesce();

    auto& c = rt.counters();
    EXPECT_GT(c.query("/timers/count/scheduled").value, 0.0);
    EXPECT_GE(c.query("/timers/time/average-lateness").value, 0.0);
    EXPECT_GE(c.query("/timers/time/max-lateness").value,
        c.query("/timers/time/average-lateness").value);
    // All flush timers resolved by quiesce: nothing left armed.
    EXPECT_DOUBLE_EQ(c.query("/timers/count/pending").value, 0.0);
    rt.stop();
}

// The arrival statistics are striped across per-thread shards
// internally; the counter facade must still aggregate to exact totals:
// per locality, the histogram holds one entry per measured gap, i.e.
// parcels - 1 (the first parcel after reset has no gap).
TEST(CountersIntegration, ArrivalStatsAggregateExactlyAcrossStripes)
{
    runtime rt(loopback());
    rt.enable_coalescing("ci_echo_action", {16, 2000});
    round_trips(rt, 120);
    rt.quiesce();

    auto& c = rt.counters();
    for (int loc = 0; loc != 2; ++loc)
    {
        std::string const inst =
            "{locality#" + std::to_string(loc) + "}";
        double const parcels =
            c.query("/coalescing" + inst + "/count/parcels@ci_echo_action")
                .value;
        ASSERT_GT(parcels, 0.0);

        auto const histogram = c.query(
            "/coalescing" + inst +
            "/time/parcel-arrival-histogram@ci_echo_action");
        ASSERT_TRUE(histogram.valid);
        ASSERT_GT(histogram.values.size(), 3u);
        std::int64_t gaps = 0;
        for (std::size_t i = 3; i < histogram.values.size(); ++i)
            gaps += histogram.values[i];
        EXPECT_EQ(gaps, static_cast<std::int64_t>(parcels) - 1);

        EXPECT_GT(c.query("/coalescing" + inst +
                       "/time/average-parcel-arrival@ci_echo_action")
                      .value,
            0.0);
    }
    rt.stop();
}

}    // namespace
