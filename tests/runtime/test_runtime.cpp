// Runtime front end: boot/shutdown, SPMD execution, async round trips,
// barriers, coalescing enablement across localities.

#include <coal/runtime/runtime.hpp>

#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <numeric>

namespace {

int rt_add(int a, int b)
{
    return a + b;
}

std::uint32_t rt_where()
{
    // Identifies the executing locality via a thread-unfriendly trick? No:
    // plain actions cannot see their host, so callers pass expectations
    // instead.  This action just returns a constant.
    return 7;
}

std::vector<double> rt_scale(std::vector<double> xs, double factor)
{
    for (auto& x : xs)
        x *= factor;
    return xs;
}

}    // namespace

COAL_PLAIN_ACTION(rt_add, rt_add_action);
COAL_PLAIN_ACTION(rt_where, rt_where_action);
COAL_PLAIN_ACTION(rt_scale, rt_scale_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;
using coal::agas::locality_id;

runtime_config loopback(std::uint32_t n, unsigned workers = 1)
{
    runtime_config cfg;
    cfg.num_localities = n;
    cfg.workers_per_locality = workers;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

TEST(Runtime, BootAndStop)
{
    runtime rt(loopback(2));
    EXPECT_EQ(rt.num_localities(), 2u);
    EXPECT_EQ(rt.get_locality(0u).id(), locality_id{0});
    EXPECT_EQ(rt.get_locality(1u).id(), locality_id{1});
    rt.stop();
    rt.stop();    // idempotent
}

TEST(Runtime, SingleLocalityWorks)
{
    runtime rt(loopback(1));
    std::atomic<int> result{0};
    rt.run_on(0, [&](locality& here) {
        auto f = here.async<rt_add_action>(here.id(), 1, 2);
        result = f.get();
    });
    EXPECT_EQ(result.load(), 3);
    rt.stop();
}

TEST(Runtime, AsyncRoundTripAcrossLocalities)
{
    runtime rt(loopback(2));
    std::atomic<int> result{0};
    rt.run_on(0, [&](locality& here) {
        auto f = here.async<rt_add_action>(locality_id{1}, 20, 22);
        result = f.get();
    });
    EXPECT_EQ(result.load(), 42);
    rt.stop();
}

TEST(Runtime, AsyncWithContainerPayload)
{
    runtime rt(loopback(2));
    std::vector<double> out;
    rt.run_on(0, [&](locality& here) {
        auto f = here.async<rt_scale_action>(
            locality_id{1}, std::vector<double>{1.0, 2.0, 3.0}, 2.5);
        out = f.get();
    });
    EXPECT_EQ(out, (std::vector<double>{2.5, 5.0, 7.5}));
    rt.stop();
}

TEST(Runtime, ApplyFireAndForget)
{
    runtime rt(loopback(2));
    rt.run_on(0, [&](locality& here) {
        here.apply<rt_add_action>(locality_id{1}, 1, 1);
    });
    rt.quiesce();
    // One parcel reached locality 1 and executed.
    EXPECT_EQ(rt.get_locality(1u).parcels().counters().parcels_executed.load(),
        1u);
    rt.stop();
}

TEST(Runtime, RunEverywhereVisitsAllLocalities)
{
    runtime rt(loopback(4));
    std::atomic<std::uint32_t> mask{0};
    rt.run_everywhere([&](locality& here) {
        mask.fetch_or(1u << here.id().value());
    });
    EXPECT_EQ(mask.load(), 0b1111u);
    rt.stop();
}

TEST(Runtime, FindRemoteLocalities)
{
    runtime rt(loopback(3));
    rt.run_on(1, [&](locality& here) {
        auto const remotes = here.find_remote_localities();
        ASSERT_EQ(remotes.size(), 2u);
        EXPECT_EQ(remotes[0], locality_id{0});
        EXPECT_EQ(remotes[1], locality_id{2});
    });
    rt.stop();
}

TEST(Runtime, BarrierSynchronizesPhases)
{
    runtime rt(loopback(3));
    std::atomic<int> in_phase{0};
    std::atomic<bool> violated{false};

    rt.run_everywhere([&](locality&) {
        for (int phase = 0; phase != 5; ++phase)
        {
            in_phase.fetch_add(1);
            rt.barrier();
            // After the barrier, all 3 must have arrived.
            if (in_phase.load() % 3 != 0)
                violated = true;
            rt.barrier();
        }
    });
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(in_phase.load(), 15);
    rt.stop();
}

TEST(Runtime, ManyConcurrentAsyncsAllComplete)
{
    runtime rt(loopback(2, 2));
    std::atomic<long long> sum{0};
    rt.run_everywhere([&](locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<int>> futures;
        futures.reserve(2000);
        for (int i = 0; i != 2000; ++i)
            futures.push_back(here.async<rt_add_action>(other, i, 1));
        long long local = 0;
        for (auto& f : futures)
            local += f.get();
        sum += local;
    });
    // Each locality: Σ(i+1) for i in [0,2000) = 2001000.
    EXPECT_EQ(sum.load(), 2 * 2001000ll);
    rt.stop();
}

TEST(Runtime, EnableCoalescingAppliesOnAllLocalities)
{
    runtime rt(loopback(3));
    ASSERT_TRUE(
        rt.enable_coalescing("rt_add_action", {16, 2000}));
    for (std::uint32_t i = 0; i != 3; ++i)
    {
        auto p = rt.get_locality(i).coalescing().params("rt_add_action");
        ASSERT_TRUE(p.has_value()) << i;
        EXPECT_EQ(p->nparcels, 16u);
    }
    ASSERT_TRUE(rt.set_coalescing_params("rt_add_action", {64, 2000}));
    for (std::uint32_t i = 0; i != 3; ++i)
        EXPECT_EQ(
            rt.get_locality(i).coalescing().params("rt_add_action")->nparcels,
            64u);
    rt.stop();
}

TEST(Runtime, CoalescedTrafficStillCompletes)
{
    runtime rt(loopback(2));
    rt.enable_coalescing("rt_add_action", {32, 1000});

    std::atomic<int> total{0};
    rt.run_everywhere([&](locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<int>> futures;
        for (int i = 0; i != 500; ++i)
            futures.push_back(here.async<rt_add_action>(other, 1, 1));
        for (auto& f : futures)
            total += f.get();
    });
    EXPECT_EQ(total.load(), 2 * 500 * 2);
    rt.stop();
}

TEST(Runtime, AggregateSnapshotSumsLocalities)
{
    runtime rt(loopback(2));
    rt.run_everywhere([&](locality& here) {
        auto f = here.async<rt_add_action>(
            here.find_remote_localities().front(), 2, 3);
        f.get();
    });
    auto const total = rt.aggregate_snapshot();
    auto const l0 = rt.get_locality(0u).scheduler().snapshot();
    auto const l1 = rt.get_locality(1u).scheduler().snapshot();
    EXPECT_EQ(total.tasks_executed, l0.tasks_executed + l1.tasks_executed);
    EXPECT_EQ(total.func_time_ns, l0.func_time_ns + l1.func_time_ns);
    rt.stop();
}

TEST(Runtime, SimNetworkEndToEnd)
{
    // Same round trip over the cost-model transport (latency > 0).
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    runtime rt(cfg);

    int result = 0;
    rt.run_on(0, [&](locality& here) {
        result = here.async<rt_add_action>(locality_id{1}, 40, 2).get();
    });
    EXPECT_EQ(result, 42);
    EXPECT_GT(rt.network().stats().messages_sent, 0u);
    rt.stop();
}

}    // namespace
