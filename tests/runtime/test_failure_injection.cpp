// Failure injection and stress: pathological parameters, shutdown with
// traffic in flight, timer storms, concurrent parameter mutation under
// load.  The invariant everywhere: no crash, no hang, no lost result for
// completed waits.

#include <coal/runtime/runtime.hpp>

#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace {

int fi_echo(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(fi_echo, fi_echo_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;

runtime_config loopback()
{
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

void burst(runtime& rt, int n)
{
    rt.run_on(0, [n](locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<int>> futures;
        for (int i = 0; i != n; ++i)
            futures.push_back(here.async<fi_echo_action>(other, i));
        coal::threading::wait_all(futures);
    });
}

TEST(FailureInjection, ZeroNparcelsActsDisabled)
{
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {0, 1000});
    burst(rt, 50);
    rt.stop();
}

TEST(FailureInjection, NegativeIntervalActsDisabled)
{
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {16, -100});
    burst(rt, 50);
    rt.stop();
}

TEST(FailureInjection, OneMicrosecondIntervalBehavesLikePaperFig8)
{
    // interval = 1 µs: parcels virtually always arrive more than 1 µs
    // apart, so the sparse bypass effectively disables coalescing (the
    // paper's Fig. 8 boundary ridge).  Must still complete correctly.
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {64, 1});
    burst(rt, 300);
    rt.quiesce();
    auto counters = rt.get_locality(0u).coalescing().counters("fi_echo_action");
    ASSERT_NE(counters, nullptr);
    // With a 1 µs window, batches stay well below the nominal 64 —
    // either via the sparse bypass or the near-immediate flush timer.
    // (Exact sizes depend on enqueue gaps, so only bound it.)
    EXPECT_LT(counters->average_parcels_per_message(), 64.0);
    rt.stop();
}

TEST(FailureInjection, TinyMaxBufferFlushesConstantly)
{
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {1000, 1000000, 1});
    burst(rt, 200);
    rt.stop();
}

TEST(FailureInjection, HugeNparcelsReliesOnTimeoutOnly)
{
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {1u << 20, 2000});
    burst(rt, 100);
    rt.stop();
}

TEST(FailureInjection, StopWithParcelsStuckInCoalescingQueues)
{
    runtime rt(loopback());
    // Fire-and-forget parcels that sit in the queue (no future waits on
    // them); stop() must flush and drain rather than hang or leak.
    rt.enable_coalescing("fi_echo_action", {1000, 60000000});
    rt.run_on(0, [](locality& here) {
        auto const other = here.find_remote_localities().front();
        for (int i = 0; i != 37; ++i)
            here.apply<fi_echo_action>(other, i);
    });
    EXPECT_GT(rt.get_locality(0u).coalescing().queued_parcels(), 0u);
    rt.stop();
    // All flushed and executed during quiesce.
    EXPECT_EQ(
        rt.get_locality(1u).parcels().counters().parcels_executed.load(),
        37u);
}

TEST(FailureInjection, ConcurrentParamMutationUnderLoad)
{
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {8, 1000});

    std::atomic<bool> stop_mutating{false};
    std::thread mutator([&] {
        std::size_t n = 1;
        while (!stop_mutating.load())
        {
            rt.set_coalescing_params("fi_echo_action", {n, 1000});
            n = n == 256 ? 1 : n * 2;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    for (int round = 0; round != 5; ++round)
        burst(rt, 400);

    stop_mutating = true;
    mutator.join();
    rt.stop();
}

TEST(FailureInjection, TimerStormManyActionsManyQueues)
{
    runtime rt(loopback());
    // Very short interval: every batch is timer-flushed.
    rt.enable_coalescing("fi_echo_action", {1u << 20, 100});
    for (int round = 0; round != 3; ++round)
        burst(rt, 500);
    rt.quiesce();
    auto const stats = rt.timers().stats();
    EXPECT_GT(stats.fired, 0u);
    rt.stop();
}

TEST(FailureInjection, RepeatedEnableDisableUnderTraffic)
{
    runtime rt(loopback());
    for (int round = 0; round != 10; ++round)
    {
        if (round % 2 == 0)
            rt.enable_coalescing("fi_echo_action", {16, 500});
        else
            for (std::uint32_t i = 0; i != 2; ++i)
                rt.get_locality(i).coalescing().disable("fi_echo_action");
        burst(rt, 100);
    }
    rt.stop();
}

TEST(FailureInjection, ThrowingSpmdFunctionDoesNotHang)
{
    coal::set_log_level(coal::log_level::none);
    runtime rt(loopback());
    rt.run_everywhere([](locality& here) {
        if (here.id().value() == 1)
            throw std::runtime_error("app bug");
    });
    // Both localities completed (one by throwing) — no hang, no crash.
    rt.stop();
    coal::set_log_level(coal::log_level::warn);
    SUCCEED();
}

TEST(FailureInjection, StressMixedWorkloads)
{
    // Toy round trips, component mutations and fire-and-forget traffic
    // interleaved on the same runtime — a race detector for the shared
    // subsystems (handler maps, response table, AGAS, timers).
    runtime rt(loopback());
    rt.enable_coalescing("fi_echo_action", {8, 500});

    struct accum
    {
        std::atomic<long long> value{0};
        void add(long long n)
        {
            value += n;
        }
    };
    // Local component type for this test.
    static auto component = std::make_shared<accum>();
    component->value = 0;
    auto const gid = rt.agas().bind(coal::agas::locality_id{1}, component);
    (void) gid;

    rt.run_everywhere([&](locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<int>> futures;
        for (int round = 0; round != 20; ++round)
        {
            for (int i = 0; i != 50; ++i)
                futures.push_back(here.async<fi_echo_action>(other, i));
            here.apply<fi_echo_action>(other, round);
            if (round % 4 == 0)
                rt.barrier();
        }
        coal::threading::wait_all(futures);
    });
    rt.quiesce();

    // 2 localities × (20×50 asyncs + 20 applies) parcels executed.
    auto const executed =
        rt.get_locality(0u).parcels().counters().parcels_executed.load() +
        rt.get_locality(1u).parcels().counters().parcels_executed.load();
    // asyncs also produce response executions at the caller side.
    EXPECT_GE(executed, 2u * (20 * 50 + 20));
    rt.stop();
}

TEST(FailureInjection, ManyRuntimesSequentially)
{
    // Churn: create/destroy full runtimes back to back (leak and
    // stale-thread-state detector, especially for the background-hook
    // caches keyed by scheduler uid).
    for (int i = 0; i != 5; ++i)
    {
        runtime rt(loopback());
        rt.enable_coalescing("fi_echo_action", {8, 500});
        burst(rt, 50);
        rt.stop();
    }
    SUCCEED();
}

TEST(FailureInjection, QuiesceIsReentrantAndIdempotent)
{
    runtime rt(loopback());
    burst(rt, 10);
    rt.quiesce();
    rt.quiesce();
    rt.stop();
}

}    // namespace
