// End-to-end behavioural tests on the full stack: coalescing reduces
// message counts without losing parcels, timeouts flush stragglers, and
// the headline mechanism (per-message cost amortization) is visible on
// the cost-model transport.

#include <coal/runtime/runtime.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace {

std::atomic<long long> g_e2e_acc{0};

int e2e_inc(int x)
{
    g_e2e_acc += x;
    return x + 1;
}

}    // namespace

COAL_PLAIN_ACTION(e2e_inc, e2e_inc_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;

runtime_config loopback()
{
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

long long burst(runtime& rt, int n)
{
    long long checksum = 0;
    rt.run_on(0, [&, n](locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<int>> futures;
        futures.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i != n; ++i)
            futures.push_back(here.async<e2e_inc_action>(other, i));
        for (auto& f : futures)
            checksum += f.get();
    });
    return checksum;
}

TEST(EndToEnd, CoalescingPreservesResultsExactly)
{
    runtime rt(loopback());
    rt.enable_coalescing("e2e_inc_action", {16, 1000});
    g_e2e_acc = 0;

    constexpr int n = 1000;
    long long const checksum = burst(rt, n);

    // Results: Σ(i+1), side effects: Σi.
    long long const expected_results =
        static_cast<long long>(n) * (n + 1) / 2;
    long long const expected_side = static_cast<long long>(n) * (n - 1) / 2;
    EXPECT_EQ(checksum, expected_results);
    EXPECT_EQ(g_e2e_acc.load(), expected_side);
    rt.stop();
}

TEST(EndToEnd, CoalescingReducesWireMessages)
{
    // Two identical runtimes, identical traffic; the coalesced one must
    // emit ~n/k of the messages.
    constexpr int n = 640;

    std::uint64_t uncoalesced_messages = 0;
    {
        runtime rt(loopback());
        burst(rt, n);
        rt.quiesce();
        uncoalesced_messages = rt.network().stats().messages_sent;
        rt.stop();
    }

    std::uint64_t coalesced_messages = 0;
    {
        runtime rt(loopback());
        rt.enable_coalescing("e2e_inc_action", {64, 5000});
        burst(rt, n);
        rt.quiesce();
        coalesced_messages = rt.network().stats().messages_sent;
        rt.stop();
    }

    EXPECT_EQ(uncoalesced_messages, 2u * n);
    // 640/64 = 10 requests + ~10-20 response messages (+ slack for
    // partial timer flushes).
    EXPECT_LE(coalesced_messages, 60u);
}

TEST(EndToEnd, TimeoutFlushesFinalPartialBatch)
{
    runtime rt(loopback());
    // Batches of 1000 never fill with 10 parcels; only the flush timer
    // (50 ms) can deliver them.
    rt.enable_coalescing("e2e_inc_action", {1000, 50000});
    long long const checksum = burst(rt, 10);
    EXPECT_EQ(checksum, 55);
    rt.stop();
}

TEST(EndToEnd, DisableCoalescingMidRun)
{
    runtime rt(loopback());
    rt.enable_coalescing("e2e_inc_action", {32, 2000});
    burst(rt, 100);

    for (std::uint32_t i = 0; i != 2; ++i)
        rt.get_locality(i).coalescing().disable("e2e_inc_action");
    long long const checksum = burst(rt, 100);
    long long const expected = 100ll * 101 / 2;
    EXPECT_EQ(checksum, expected);
    rt.stop();
}

TEST(EndToEnd, ResponsesCoalesceWhenEnabled)
{
    runtime rt(loopback());
    rt.enable_coalescing("e2e_inc_action", {32, 5000});
    burst(rt, 320);
    rt.quiesce();

    // Locality 1 sends responses through its sibling handler.
    auto counters =
        rt.get_locality(1u).coalescing().counters("e2e_inc_action");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->parcels(), 320u);
    EXPECT_GT(counters->average_parcels_per_message(), 2.0);
    rt.stop();
}

TEST(EndToEnd, ResponsesBypassWhenDisabledInConfig)
{
    runtime_config cfg = loopback();
    cfg.coalesce_responses = false;
    runtime rt(cfg);
    rt.enable_coalescing("e2e_inc_action", {32, 5000});
    burst(rt, 320);
    rt.quiesce();

    // With response coalescing off, locality 1's response stream is not
    // routed through a handler: its per-action counters see nothing.
    auto counters =
        rt.get_locality(1u).coalescing().counters("e2e_inc_action");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->parcels(), 0u);
    // Wire: 320 individual response messages + ~10 request messages.
    EXPECT_GE(rt.network().stats().messages_sent, 320u);
    rt.stop();
}

TEST(EndToEnd, PerMessageCostAmortizationOnSimNetwork)
{
    // The paper's headline mechanism, as a test: with a significant
    // per-message cost, coalescing k parcels per message must be faster.
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    cfg.pin_transport = true;    // asserts the *simulated* cost model
    cfg.network.send_overhead_us = 20.0;
    cfg.network.recv_overhead_us = 20.0;

    constexpr int n = 400;

    double uncoalesced_s = 0.0;
    {
        runtime rt(cfg);
        coal::stopwatch sw;
        burst(rt, n);
        uncoalesced_s = sw.elapsed_s();
        rt.stop();
    }

    double coalesced_s = 0.0;
    {
        runtime rt(cfg);
        rt.enable_coalescing("e2e_inc_action", {64, 4000});
        coal::stopwatch sw;
        burst(rt, n);
        coalesced_s = sw.elapsed_s();
        rt.stop();
    }

    // 400 × 40 µs ≈ 16 ms of per-message CPU vs ~0.5 ms coalesced;
    // require a clear win with generous noise margin.
    EXPECT_LT(coalesced_s, uncoalesced_s * 0.8)
        << "uncoalesced " << uncoalesced_s << " s vs coalesced "
        << coalesced_s << " s";
}

TEST(EndToEnd, OverheadMetricFallsWithCoalescing)
{
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    cfg.network.send_overhead_us = 20.0;
    cfg.network.recv_overhead_us = 20.0;

    double overhead_uncoalesced = 0.0;
    {
        runtime rt(cfg);
        burst(rt, 400);
        rt.quiesce();
        overhead_uncoalesced =
            rt.counters().query("/threads/background-overhead").value;
        rt.stop();
    }

    double overhead_coalesced = 0.0;
    {
        runtime rt(cfg);
        rt.enable_coalescing("e2e_inc_action", {64, 4000});
        burst(rt, 400);
        rt.quiesce();
        overhead_coalesced =
            rt.counters().query("/threads/background-overhead").value;
        rt.stop();
    }

    EXPECT_LT(overhead_coalesced, overhead_uncoalesced);
}

}    // namespace
