// Full-stack acceptance tests for the lossy-network mode: a seeded fault
// plan on the simulated interconnect with the reliability layer forced
// on must deliver every parcel exactly once and in per-link order, and
// the per-link circuit breaker must degrade coalescing gracefully during
// a blackout and recover after it heals.

#include <coal/runtime/runtime.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/parcel/action.hpp>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>

namespace {

// One in-order progress counter per directed link (origin * 4 + dest).
std::array<std::atomic<int>, 16> g_next_index;
std::atomic<long long> g_order_violations{0};
std::atomic<long long> g_executions{0};

int lossy_record(int link, int index)
{
    int const expected = g_next_index[static_cast<std::size_t>(link)]
                             .fetch_add(1, std::memory_order_relaxed);
    if (index != expected)
        ++g_order_violations;
    ++g_executions;
    return index;
}

void reset_order_state()
{
    for (auto& c : g_next_index)
        c.store(0, std::memory_order_relaxed);
    g_order_violations = 0;
    g_executions = 0;
}

}    // namespace

COAL_PLAIN_ACTION(lossy_record, lossy_record_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;

TEST(LossyRuntime, SeededFaultsDeliverExactlyOnceInOrder)
{
    reset_order_state();

    runtime_config cfg;
    cfg.num_localities = 4;
    cfg.workers_per_locality = 1;
    cfg.apply_coalescing_defaults = false;
    // Cheap interconnect so the test exercises protocol logic, not the
    // modeled per-message busy-wait.
    cfg.network.send_overhead_us = 0.0;
    cfg.network.send_per_kb_us = 0.0;
    cfg.network.recv_overhead_us = 0.0;
    cfg.network.wire_latency_us = 1.0;
    cfg.network.bandwidth_bytes_per_us = 1e6;
    // The seeded fault plan: drops, duplicates and reordering at once.
    cfg.faults.seed = 0xc0a1e5ce;
    cfg.faults.drop_probability = 0.01;
    cfg.faults.duplicate_probability = 0.005;
    cfg.faults.reorder_probability = 0.005;
    // Bulk transfer tuning: a burst send means acks lag the send window,
    // so give the RTO headroom and keep the breaker out of this test
    // (the breaker has its own test below).
    cfg.reliability.ack_delay_us = 100;
    cfg.reliability.min_rto_us = 20000;
    cfg.reliability.breaker_trip_backlog = 1u << 20;
    cfg.reliability.breaker_trip_attempts = 1000;

    runtime rt(cfg);
    ASSERT_TRUE(rt.config().reliability.enabled)
        << "an active fault plan must force the reliability layer on";
    rt.enable_coalescing("lossy_record_action", {64, 2000});

    constexpr int n = 25000;    // per directed link; 12 links -> 300k parcels
    rt.run_everywhere([](locality& here) {
        auto const origin = static_cast<int>(here.id().value());
        for (int i = 0; i != n; ++i)
        {
            for (auto const dest : here.find_remote_localities())
            {
                int const link = origin * 4 + static_cast<int>(dest.value());
                here.apply<lossy_record_action>(dest, link, i);
            }
        }
    });
    rt.quiesce();

    // Exactly once, in order, on every link.
    EXPECT_EQ(g_executions.load(), 12ll * n);
    EXPECT_EQ(g_order_violations.load(), 0);

    std::uint64_t executed = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t suppressed = 0;
    for (std::uint32_t i = 0; i != 4; ++i)
    {
        auto const& c = rt.get_locality(i).parcels().counters();
        executed += c.parcels_executed.load();
        retransmits += c.retransmits.load();
        suppressed += c.duplicates_suppressed.load();
    }
    EXPECT_EQ(executed, 12ull * n);
    // ~1% of thousands of frames were dropped: retransmission must have
    // happened, and the injected duplicates must have been suppressed.
    EXPECT_GT(retransmits, 0u);
    EXPECT_GT(suppressed, 0u);

    auto const net = rt.network().stats();
    EXPECT_GT(net.drops_injected, 0u);
    EXPECT_GT(net.duplicates_injected, 0u);

    // The /net counters expose the same story.
    EXPECT_GT(rt.counters().query("/net/count/retransmits").value, 0.0);
    EXPECT_GT(rt.counters().query("/net/count/drops-injected").value, 0.0);
    EXPECT_GT(
        rt.counters().query("/net/count/duplicates-suppressed").value, 0.0);
    EXPECT_GT(
        rt.counters().query("/net/time/average-ack-latency").value, 0.0);
    rt.stop();
}

namespace {

    constexpr int burst_parcels = 4000;

    void burst(runtime& rt)
    {
        rt.run_on(0, [](locality& here) {
            auto const other = here.find_remote_localities().front();
            for (int i = 0; i != burst_parcels; ++i)
                here.apply<lossy_record_action>(other, 1, i);
        });
        rt.quiesce();
    }

    double measured_ppm(runtime& rt, std::uint64_t parcels_before,
        std::uint64_t messages_before)
    {
        auto const counters =
            rt.get_locality(0).coalescing().counters("lossy_record_action");
        double const parcels =
            static_cast<double>(counters->parcels() - parcels_before);
        double const messages =
            static_cast<double>(counters->messages() - messages_before);
        return messages > 0.0 ? parcels / messages : 0.0;
    }

}    // namespace

TEST(LossyRuntime, CircuitBreakerDegradesAndRecovers)
{
    // Control: identical burst on a lossless loopback runtime.
    double ppm_lossless = 0.0;
    {
        reset_order_state();
        runtime_config cfg;
        cfg.num_localities = 2;
        cfg.use_loopback = true;
        cfg.apply_coalescing_defaults = false;
        runtime rt(cfg);
        rt.enable_coalescing("lossy_record_action", {16, 5000});
        burst(rt);
        ppm_lossless = measured_ppm(rt, 0, 0);
        rt.stop();
    }
    ASSERT_GT(ppm_lossless, 2.0);

    // Lossy: the 0->1 link is dark for the first 150 ms.
    reset_order_state();
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    coal::net::blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.start_us = 0;
    w.end_us = 150'000;
    cfg.faults.blackouts.push_back(w);
    // Trip fast and recover fast so the test stays short.
    cfg.reliability.breaker_trip_backlog = 8;
    cfg.reliability.max_rto_us = 50000;

    runtime rt(cfg);
    rt.enable_coalescing("lossy_record_action", {16, 5000});
    auto const handler =
        rt.get_locality(0).coalescing().handler("lossy_record_action");
    ASSERT_NE(handler, nullptr);
    auto& ph0 = rt.get_locality(0).parcels();

    // Feed traffic into the blackout until the breaker reacts.
    rt.run_on(0, [](locality& here) {
        auto const other = here.find_remote_localities().front();
        for (int i = 0; i != 2000; ++i)
            here.apply<lossy_record_action>(other, 1, i);
    });
    coal::stopwatch trip_deadline;
    while (!ph0.link_degraded(1) && trip_deadline.elapsed_ms() < 5000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Degradation must be visible: breaker open, coalescing bypassed.
    EXPECT_TRUE(ph0.link_degraded(1));
    EXPECT_GE(ph0.counters().circuit_breaker_trips.load(), 1u);
    EXPECT_GT(rt.counters().query("/net/count/circuit-breaker-trips").value,
        0.0);
    rt.run_on(0, [](locality& here) {
        auto const other = here.find_remote_localities().front();
        for (int i = 2000; i != 2400; ++i)
            here.apply<lossy_record_action>(other, 1, i);
    });
    EXPECT_GT(handler->breaker_bypasses(), 0u);

    // Heal: once retransmissions get through, acks drain the backlog and
    // close the breaker; quiesce then proves nothing was lost.
    coal::stopwatch heal_deadline;
    while (ph0.link_degraded(1) && heal_deadline.elapsed_ms() < 20000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(ph0.link_degraded(1));
    rt.quiesce();
    EXPECT_EQ(g_executions.load(), 2400);
    EXPECT_EQ(g_order_violations.load(), 0);

    // Post-heal, batching efficiency returns to the lossless level.
    auto const counters =
        rt.get_locality(0).coalescing().counters("lossy_record_action");
    std::uint64_t const parcels_before = counters->parcels();
    std::uint64_t const messages_before = counters->messages();
    burst(rt);
    double const ppm_healed =
        measured_ppm(rt, parcels_before, messages_before);
    EXPECT_GT(ppm_healed, 0.0);
    EXPECT_NEAR(ppm_healed, ppm_lossless, 0.1 * ppm_lossless)
        << "post-heal parcels-per-message did not recover";
    rt.stop();
}

}    // namespace
