// Component actions: gid-addressed objects, AGAS resolution, migration
// transparency, and coalescing of component-action traffic.

#include <coal/parcel/component_action.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <mutex>
#include <string>

namespace {

// A counter object hosted on one locality, mutated remotely.
struct counter_component
{
    std::int64_t add(std::int64_t n)
    {
        std::lock_guard lock(mutex);
        value += n;
        return value;
    }

    std::int64_t read() const
    {
        // Component actions target non-const members in this model;
        // read() is exposed through a non-const wrapper below.
        return value;
    }

    std::int64_t get()
    {
        std::lock_guard lock(mutex);
        return value;
    }

    void reset()
    {
        std::lock_guard lock(mutex);
        value = 0;
    }

    std::mutex mutex;
    std::int64_t value = 0;
};

struct name_component
{
    std::string greet(std::string who)
    {
        return "hello " + who;
    }
};

}    // namespace

COAL_COMPONENT_ACTION(&counter_component::add, counter_add_action);
COAL_COMPONENT_ACTION(&counter_component::get, counter_get_action);
COAL_COMPONENT_ACTION(&counter_component::reset, counter_reset_action);
COAL_COMPONENT_ACTION(&name_component::greet, name_greet_action);

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;
using coal::agas::gid;
using coal::agas::locality_id;

runtime_config loopback(std::uint32_t n = 2)
{
    runtime_config cfg;
    cfg.num_localities = n;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

TEST(Components, RemoteInvocationMutatesHostedObject)
{
    runtime rt(loopback());
    gid const counter = rt.new_component<counter_component>(locality_id{1});

    std::int64_t result = 0;
    rt.run_on(0, [&](locality& here) {
        result = here.async<counter_add_action>(counter, 40).get();
        result = here.async<counter_add_action>(counter, 2).get();
    });
    EXPECT_EQ(result, 42);

    // Direct AGAS access sees the same instance.
    auto instance = rt.agas().find<counter_component>(counter);
    ASSERT_NE(instance, nullptr);
    EXPECT_EQ(instance->value, 42);
    rt.stop();
}

TEST(Components, LocalInvocationShortCircuits)
{
    runtime rt(loopback());
    gid const counter = rt.new_component<counter_component>(locality_id{0});
    rt.run_on(0, [&](locality& here) {
        EXPECT_EQ(here.async<counter_add_action>(counter, 7).get(), 7);
    });
    EXPECT_EQ(rt.network().stats().messages_sent, 0u);
    rt.stop();
}

TEST(Components, VoidMethodAndApply)
{
    runtime rt(loopback());
    gid const counter = rt.new_component<counter_component>(locality_id{1});
    rt.run_on(0, [&](locality& here) {
        here.async<counter_add_action>(counter, 5).get();
        here.async<counter_reset_action>(counter).get();
        EXPECT_EQ(here.async<counter_get_action>(counter).get(), 0);
        here.apply<counter_add_action>(counter, 3);    // fire-and-forget
    });
    rt.quiesce();
    EXPECT_EQ(rt.agas().find<counter_component>(counter)->value, 3);
    rt.stop();
}

TEST(Components, StringArgumentsAndResults)
{
    runtime rt(loopback());
    gid const greeter = rt.new_component<name_component>(locality_id{1});
    std::string result;
    rt.run_on(0, [&](locality& here) {
        result =
            here.async<name_greet_action>(greeter, std::string("coal"))
                .get();
    });
    EXPECT_EQ(result, "hello coal");
    rt.stop();
}

TEST(Components, MultipleInstancesAreIndependent)
{
    runtime rt(loopback(3));
    gid const a = rt.new_component<counter_component>(locality_id{1});
    gid const b = rt.new_component<counter_component>(locality_id{2});

    rt.run_on(0, [&](locality& here) {
        here.async<counter_add_action>(a, 1).get();
        here.async<counter_add_action>(b, 100).get();
        EXPECT_EQ(here.async<counter_get_action>(a).get(), 1);
        EXPECT_EQ(here.async<counter_get_action>(b).get(), 100);
    });
    rt.stop();
}

TEST(Components, MigrationIsTransparentToCallers)
{
    runtime rt(loopback(3));
    gid const counter = rt.new_component<counter_component>(locality_id{1});

    rt.run_on(0, [&](locality& here) {
        here.async<counter_add_action>(counter, 10).get();
    });

    // Re-home the object; the gid stays valid (paper §II-A: "maintained
    // throughout the lifetime of the object even if it is moved").
    ASSERT_TRUE(rt.agas().migrate(counter, locality_id{2}));

    rt.run_on(0, [&](locality& here) {
        EXPECT_EQ(here.async<counter_add_action>(counter, 5).get(), 15);
    });
    rt.stop();
}

TEST(Components, ConcurrentRemoteIncrementsConserve)
{
    runtime rt(loopback());
    gid const counter = rt.new_component<counter_component>(locality_id{1});

    rt.run_everywhere([&](locality& here) {
        std::vector<coal::threading::future<std::int64_t>> futures;
        for (int i = 0; i != 500; ++i)
            futures.push_back(here.async<counter_add_action>(counter, 1));
        coal::threading::wait_all(futures);
    });
    EXPECT_EQ(rt.agas().find<counter_component>(counter)->value, 1000);
    rt.stop();
}

TEST(Components, CoalescingAppliesToComponentActions)
{
    runtime rt(loopback());
    rt.enable_coalescing("counter_add_action", {32, 5000});
    gid const counter = rt.new_component<counter_component>(locality_id{1});

    rt.run_on(0, [&](locality& here) {
        std::vector<coal::threading::future<std::int64_t>> futures;
        for (int i = 0; i != 320; ++i)
            futures.push_back(here.async<counter_add_action>(counter, 1));
        coal::threading::wait_all(futures);
    });
    rt.quiesce();
    EXPECT_EQ(rt.agas().find<counter_component>(counter)->value, 320);
    // 320 requests / 32 per message (+ responses + flush slack).
    EXPECT_LE(rt.network().stats().messages_sent, 40u);
    rt.stop();
}

TEST(Components, UnboundGidDropsParcelSafely)
{
    runtime rt(loopback());
    gid const counter = rt.new_component<counter_component>(locality_id{1});
    rt.agas().unbind(counter);

    rt.run_on(0, [&](locality& here) {
        // The action is dropped at the target; the future never becomes
        // ready — use apply (no future) to exercise the path safely.
        here.apply<counter_add_action>(counter, 1);
    });
    rt.quiesce();
    SUCCEED();
}

}    // namespace
