// Hierarchical (two-level) aggregation tests (tsan target): topology
// partitioning, relay routing of cross-node coalesced traffic, and the
// exactly-once-through-relay guarantees under fault injection and relay
// death.
//
//  - Cross-node parcels must arrive exactly once after passing through a
//    node-pair bundle and the relay's fan-out leg, with the relay/fan-out
//    ledger balancing against sender-side confirmation.
//  - Drops and duplicates on the wire must not break exactly-once: each
//    hop's reliability layer retransmits and dedups independently.
//  - Killing a relay mid-fan-out must degrade to at-most-once with full
//    sender-side accounting (custody transfer: the origin's frame was
//    acked), and traffic must fail over to a successor relay once the
//    failure detector fences the dead one.

#include <coal/runtime/runtime.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/topology.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

namespace {

constexpr std::uint32_t hier_n = 6;    // localities: nodes {0,1,2} {3,4,5}
constexpr std::uint32_t hier_nodes = 2;
constexpr std::uint32_t tag_space = 1024;    // per-pair tag range

std::array<std::atomic<std::uint64_t>, hier_n * hier_n> g_exec{};
std::array<std::atomic<std::uint8_t>, hier_n * hier_n * tag_space> g_seen{};
std::atomic<std::uint64_t> g_dups{0};

void reset_marks()
{
    for (auto& e : g_exec)
        e.store(0);
    for (auto& e : g_seen)
        e.store(0);
    g_dups.store(0);
}

std::uint32_t hier_mark(std::uint32_t src, std::uint32_t dst,
    std::uint32_t tag)
{
    g_exec[src * hier_n + dst].fetch_add(1);
    if (tag < tag_space &&
        g_seen[(src * hier_n + dst) * tag_space + tag].exchange(1) != 0)
        g_dups.fetch_add(1);
    return tag;
}

}    // namespace

COAL_PLAIN_ACTION(hier_mark, hier_mark_action);

namespace {

using coal::net::link_tier;
using coal::net::topology;
using coal::parcel::peer_status;

coal::runtime_config hier_config()
{
    coal::runtime_config cfg;
    cfg.num_localities = hier_n;
    cfg.num_nodes = hier_nodes;
    cfg.hierarchical_routing = true;
    cfg.workers_per_locality = 1;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    cfg.idle_sleep_us = 50;
    cfg.reliability.enabled = true;
    cfg.reliability.ack_delay_us = 100;
    cfg.reliability.min_rto_us = 500;
    cfg.reliability.max_rto_us = 20000;
    return cfg;
}

// Offer `per_pair` parcels from every locality to every other, tags
// [tag_base, tag_base + per_pair) within each pair's space.
void burst_all_pairs(coal::runtime& rt, std::uint32_t per_pair,
    std::uint32_t tag_base)
{
    std::vector<std::thread> senders;
    senders.reserve(hier_n);
    for (std::uint32_t s = 0; s != hier_n; ++s)
    {
        senders.emplace_back([&rt, s, per_pair, tag_base] {
            for (std::uint32_t k = 0; k != per_pair; ++k)
                for (std::uint32_t d = 0; d != hier_n; ++d)
                    if (d != s)
                        rt.get_locality(s).apply<hier_mark_action>(
                            coal::agas::locality_id{d}, s, d, tag_base + k);
        });
    }
    for (auto& t : senders)
        t.join();
}

TEST(Hierarchy, TopologyUnevenPartitionCoversEveryLocality)
{
    // 10 localities over 4 nodes: block size 3, last node short.
    topology const topo{10, 4};
    ASSERT_TRUE(topo.enabled());
    EXPECT_EQ(topo.node_size(), 3u);
    EXPECT_EQ(topo.node_of(0), 0u);
    EXPECT_EQ(topo.node_of(2), 0u);
    EXPECT_EQ(topo.node_of(3), 1u);
    EXPECT_EQ(topo.node_of(9), 3u);
    EXPECT_EQ(topo.node_first(3), 9u);
    EXPECT_EQ(topo.node_end(3), 10u);    // short last node
    // The partition covers [0, L) without gaps or overlap.
    for (std::uint32_t l = 0; l != 10; ++l)
    {
        std::uint32_t const node = topo.node_of(l);
        EXPECT_GE(l, topo.node_first(node));
        EXPECT_LT(l, topo.node_end(node));
    }
    EXPECT_EQ(topo.tier_of(0, 2), link_tier::intra_node);
    EXPECT_EQ(topo.tier_of(2, 3), link_tier::inter_node);
    EXPECT_EQ(topo.tier_of(9, 9), link_tier::intra_node);

    topology const flat{10, 1};
    EXPECT_FALSE(flat.enabled());
    EXPECT_EQ(flat.tier_of(0, 1), link_tier::inter_node);
}

TEST(Hierarchy, CrossNodeTrafficRelaysExactlyOnce)
{
    reset_marks();
    constexpr std::uint32_t per_pair = 60;

    coal::runtime rt(hier_config());
    rt.enable_coalescing(hier_mark_action::name(), {8, 1000});
    burst_all_pairs(rt, per_pair, 0);
    rt.quiesce();

    // Every pair delivered exactly once.
    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
            if (s != d)
            {
                EXPECT_EQ(g_exec[s * hier_n + d].load(), per_pair)
                    << "pair " << s << "->" << d;
            }
    EXPECT_EQ(g_dups.load(), 0u);

    // Each cross-node parcel passed through exactly one relay; intra-node
    // parcels passed through none.  6 localities / 2 nodes -> 18 directed
    // cross-node pairs.
    std::uint64_t relayed = 0, fanned = 0, inter_msgs = 0, offered = 0,
                  confirmed = 0, relay_confirmed = 0;
    for (std::uint32_t l = 0; l != hier_n; ++l)
    {
        auto const& c = rt.get_locality(l).parcels().counters();
        relayed += c.parcels_relayed.load();
        fanned += c.parcels_fanned_out.load();
        inter_msgs += c.messages_inter_node.load();
        confirmed += c.parcels_confirmed.load();
        relay_confirmed += c.parcels_relay_confirmed.load();
    }
    // A cross-node parcel is forwarded unless its destination happens to
    // BE its stream's designated relay (then the relay just executes it —
    // no self-forward).  Relay choice is deterministic, so the expected
    // forward count is exact.
    topology const topo{hier_n, hier_nodes};
    std::uint64_t cross_parcels = 0, expected_forwards = 0;
    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
        {
            if (s == d || topo.same_node(s, d))
                continue;
            cross_parcels += per_pair;
            std::uint32_t const node = topo.node_of(d);
            std::uint32_t const first = topo.node_first(node);
            std::uint32_t const relay =
                first + s % (topo.node_end(node) - first);
            if (d != relay)
                expected_forwards += per_pair;
        }
    offered = 30ull * per_pair;    // all directed pairs
    EXPECT_EQ(relayed, expected_forwards);
    EXPECT_EQ(fanned, expected_forwards);
    // Aggregation actually happened: far fewer inter-node wire messages
    // than cross-node parcels.
    EXPECT_GT(inter_msgs, 0u);
    EXPECT_LT(inter_msgs, cross_parcels / 4);
    // Custody ledger, origin-attributed: parcels_confirmed counts only a
    // locality's OWN parcels (confirmed by the relay or the destination),
    // so cluster-wide it equals offered exactly; the fan-out re-sends are
    // confirmed to the relays under the separate relay ledger.
    EXPECT_EQ(confirmed, offered);
    EXPECT_EQ(relay_confirmed, fanned);

    rt.stop();
}

TEST(Hierarchy, RelayedContinuationCompletesAtOrigin)
{
    reset_marks();
    coal::runtime rt(hier_config());
    rt.enable_coalescing(hier_mark_action::name(), {8, 1000});

    // Round-trip across the node boundary: the request relays 0 -> node 1,
    // the response relays back.  The future must complete at the origin
    // (forward_parcel preserves p.source).
    rt.run_on(0, [](coal::locality& here) {
        for (std::uint32_t tag = 0; tag != 32; ++tag)
        {
            auto f = here.async<hier_mark_action>(
                coal::agas::locality_id{4}, 0u, 4u, tag);
            EXPECT_EQ(f.get(), tag);
        }
    });
    rt.quiesce();
    EXPECT_EQ(g_exec[0 * hier_n + 4].load(), 32u);
    EXPECT_EQ(g_dups.load(), 0u);
    rt.stop();
}

TEST(Hierarchy, DisabledTopologyNeverRelays)
{
    // This test's premise IS the flat configuration — clear the CI knob
    // that forces a topology onto flat configs before building the
    // runtime.
    unsetenv("COAL_FORCE_NUM_NODES");
    reset_marks();
    auto cfg = hier_config();
    cfg.num_nodes = 1;    // hierarchical_routing stays true but is inert
    coal::runtime rt(cfg);
    rt.enable_coalescing(hier_mark_action::name(), {8, 1000});
    burst_all_pairs(rt, 20, 0);
    rt.quiesce();

    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
            if (s != d)
            {
                EXPECT_EQ(g_exec[s * hier_n + d].load(), 20u);
            }
    for (std::uint32_t l = 0; l != hier_n; ++l)
    {
        auto const& c = rt.get_locality(l).parcels().counters();
        EXPECT_EQ(c.parcels_relayed.load(), 0u) << l;
        EXPECT_EQ(c.parcels_fanned_out.load(), 0u) << l;
        // Tier accounting is off with a flat topology.
        EXPECT_EQ(c.messages_inter_node.load(), 0u) << l;
        EXPECT_EQ(c.messages_intra_node.load(), 0u) << l;
    }
    rt.stop();
}

TEST(Hierarchy, ExactlyOnceThroughRelayUnderDropsAndDuplicates)
{
    reset_marks();
    constexpr std::uint32_t per_pair = 40;

    auto cfg = hier_config();
    cfg.faults.seed = coal::net::fault_plan::resolve_seed(0x41EA5EEDull);
    cfg.faults.drop_probability = 0.03;
    cfg.faults.duplicate_probability = 0.02;
    SCOPED_TRACE("replay with COAL_FAULT_SEED=" +
        std::to_string(cfg.faults.seed));

    coal::runtime rt(cfg);
    rt.enable_coalescing(hier_mark_action::name(), {8, 500});
    burst_all_pairs(rt, per_pair, 0);
    rt.quiesce();

    // Per-hop retransmission and dedup compose across the relay: every
    // parcel lands exactly once despite wire drops and duplicates on
    // both legs.
    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
            if (s != d)
            {
                EXPECT_EQ(g_exec[s * hier_n + d].load(), per_pair)
                    << "pair " << s << "->" << d;
            }
    EXPECT_EQ(g_dups.load(), 0u);

    std::uint64_t relayed = 0, fanned = 0;
    for (std::uint32_t l = 0; l != hier_n; ++l)
    {
        auto const& c = rt.get_locality(l).parcels().counters();
        relayed += c.parcels_relayed.load();
        fanned += c.parcels_fanned_out.load();
    }
    // Wire-level duplicates are dedupped *before* decode, so a parcel is
    // never relayed twice either.  12 of the 18 directed cross-node pairs
    // address past their relay (the other 6 terminate AT it).
    EXPECT_EQ(relayed, 12ull * per_pair);
    EXPECT_EQ(fanned, relayed);

    rt.stop();
}

TEST(Hierarchy, RelayDeathFailsOverToSuccessor)
{
    reset_marks();
    constexpr std::uint32_t per_pair = 30;

    auto cfg = hier_config();
    cfg.workers_per_locality = 2;
    cfg.membership.enabled = true;
    cfg.membership.heartbeat_interval_us = 5000;
    cfg.membership.probe_interval_us = 10000;
    cfg.membership.min_dead_us = 150000;

    coal::runtime rt(cfg);
    rt.enable_coalescing(hier_mark_action::name(), {8, 500});

    // Locality 3 is the preferred relay into node 1 for source 0
    // (node_first(1) + 0 % node_size == 3) — and a destination itself.
    constexpr std::uint32_t victim = 3;

    // Round 0: clean all-to-all so every pair has contact and the
    // failure detectors have interarrival history.
    burst_all_pairs(rt, per_pair, 0);
    rt.quiesce();
    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
            if (s != d)
            {
                ASSERT_EQ(g_exec[s * hier_n + d].load(), per_pair);
            }

    // Round 1: the relay dies mid-fan-out.  Parcels it took custody of
    // but had not forwarded die with it (surfaced through ITS failure
    // funnel), so delivery degrades to at-most-once — but never twice.
    {
        std::thread killer([&rt] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            rt.kill_locality(victim);
        });
        burst_all_pairs(rt, per_pair, per_pair);
        killer.join();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    rt.quiesce();
    EXPECT_EQ(g_dups.load(), 0u) << "a parcel executed twice";
    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
            if (s != d)
            {
                EXPECT_LE(g_exec[s * hier_n + d].load(), 2ull * per_pair);
            }

    // Wait until source 0 — the one whose preferred relay IS the victim,
    // so its inter-node hop went unacked — has fenced it.  Sources 1 and
    // 2 never monitor the victim at all: their node-pair streams relay
    // through localities 4/5, which take custody and fence the dead
    // destination themselves.  That indirection is the point of the
    // custody model, so the test must not demand a verdict from them.
    coal::stopwatch deadline;
    auto victim_fenced_at_source0 = [&rt] {
        return rt.get_locality(0).parcels().peer_liveness(victim) !=
            peer_status::alive;
    };
    while (!victim_fenced_at_source0() && deadline.elapsed_ms() < 30000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(victim_fenced_at_source0());

    // Round 2: node 0's sources stream to the victim's node-mates.  The
    // node-pair streams that used the dead relay must re-resolve onto a
    // live successor and deliver exactly once.
    std::uint64_t before_4 = 0, before_5 = 0;
    for (std::uint32_t s : {0u, 1u, 2u})
    {
        before_4 += g_exec[s * hier_n + 4].load();
        before_5 += g_exec[s * hier_n + 5].load();
    }
    for (std::uint32_t s : {0u, 1u, 2u})
        for (std::uint32_t k = 0; k != per_pair; ++k)
            for (std::uint32_t d : {4u, 5u})
                rt.get_locality(s).apply<hier_mark_action>(
                    coal::agas::locality_id{d}, s, d, 2 * per_pair + k);
    rt.quiesce();
    std::uint64_t after_4 = 0, after_5 = 0;
    for (std::uint32_t s : {0u, 1u, 2u})
    {
        after_4 += g_exec[s * hier_n + 4].load();
        after_5 += g_exec[s * hier_n + 5].load();
    }
    EXPECT_EQ(after_4 - before_4, 3ull * per_pair);
    EXPECT_EQ(after_5 - before_5, 3ull * per_pair);
    EXPECT_EQ(g_dups.load(), 0u);
    // The successor actually relayed: new fan-out work appeared on node
    // 1's survivors.
    EXPECT_GT(rt.get_locality(4).parcels().counters().parcels_relayed.load() +
            rt.get_locality(5).parcels().counters().parcels_relayed.load(),
        0u);

    // Rejoin under a fresh epoch; full mesh works again.
    rt.restart_locality(victim);
    auto all_alive = [&rt] {
        for (std::uint32_t i = 0; i != hier_n; ++i)
            for (std::uint32_t j = 0; j != hier_n; ++j)
                if (i != j &&
                    rt.get_locality(i).parcels().peer_liveness(j) !=
                        peer_status::alive)
                    return false;
        return true;
    };
    while (!all_alive() && deadline.elapsed_ms() < 60000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(all_alive()) << "membership never reconverged after rejoin";

    std::uint64_t const dups_before_final = g_dups.load();
    burst_all_pairs(rt, per_pair, 3 * per_pair);
    rt.quiesce();
    for (std::uint32_t s = 0; s != hier_n; ++s)
        for (std::uint32_t d = 0; d != hier_n; ++d)
            if (s != d)
            {
                // Tags [3*per_pair, 4*per_pair) are fresh, so the final
                // round's delivery shows up as exactly per_pair new
                // executions on every pair.
                EXPECT_GE(g_exec[s * hier_n + d].load(), 2ull * per_pair)
                    << "pair " << s << "->" << d;
            }
    EXPECT_EQ(g_dups.load(), dups_before_final);

    rt.stop();
}

}    // namespace
