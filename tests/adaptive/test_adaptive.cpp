// Adaptive controller: decision logic driven by real traffic through a
// full runtime (loopback, so timing-independent), plus convergence
// behaviour on the simulated network.

#include <coal/adaptive/adaptive_coalescer.hpp>

#include <coal/apps/toy_app.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

namespace {

using coal::adaptive::adaptive_coalescer;
using coal::adaptive::tuner_config;
using coal::coalescing::coalescing_params;

coal::runtime_config loopback_runtime()
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

// Drive `count` round trips of the toy action through the runtime.
void traffic(coal::runtime& rt, std::size_t count)
{
    rt.run_everywhere([count](coal::locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<std::complex<double>>> vec;
        vec.reserve(count);
        for (std::size_t i = 0; i != count; ++i)
            vec.push_back(here.async<toy_get_cplx_action>(other));
        coal::threading::wait_all(vec);
    });
}

TEST(AdaptiveCoalescer, StartsFromEnabledParams)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{16, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    adaptive_coalescer tuner(rt, cfg);
    EXPECT_EQ(tuner.current_nparcels(), 16u);
    EXPECT_FALSE(tuner.converged());
    EXPECT_EQ(tuner.decisions(), 0u);
    rt.stop();
}

TEST(AdaptiveCoalescer, IdleWindowMakesNoDecision)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{16, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 64;
    adaptive_coalescer tuner(rt, cfg);

    EXPECT_FALSE(tuner.tick());    // no traffic at all
    ASSERT_EQ(tuner.history().size(), 1u);
    EXPECT_STREQ(tuner.history()[0].event, "idle");
    EXPECT_EQ(tuner.current_nparcels(), 16u);
    rt.stop();
}

TEST(AdaptiveCoalescer, WarmupThenExploreUpward)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{8, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 10;
    adaptive_coalescer tuner(rt, cfg);

    traffic(rt, 200);
    EXPECT_TRUE(tuner.tick());    // warmup decision: 8 -> 16
    EXPECT_EQ(tuner.current_nparcels(), 16u);
    EXPECT_EQ(tuner.decisions(), 1u);
    ASSERT_GE(tuner.history().size(), 1u);
    EXPECT_STREQ(tuner.history()[0].event, "warmup");
    rt.stop();
}

TEST(AdaptiveCoalescer, RespectsMaxBound)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{8, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 10;
    cfg.max_nparcels = 16;
    adaptive_coalescer tuner(rt, cfg);

    for (int i = 0; i != 10 && !tuner.converged(); ++i)
    {
        traffic(rt, 200);
        tuner.tick();
        EXPECT_LE(tuner.current_nparcels(), 16u);
    }
    EXPECT_TRUE(tuner.converged());
    rt.stop();
}

TEST(AdaptiveCoalescer, HistoryRecordsRates)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{8, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 10;
    adaptive_coalescer tuner(rt, cfg);

    traffic(rt, 300);
    tuner.tick();
    auto const history = tuner.history();
    ASSERT_EQ(history.size(), 1u);
    EXPECT_GT(history[0].parcel_rate, 0.0);
    EXPECT_EQ(history[0].nparcels, 8u);
    EXPECT_EQ(history[0].next_nparcels, 16u);
    rt.stop();
}

TEST(AdaptiveCoalescer, IntervalTuningRunsSecondPass)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{8, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 10;
    cfg.max_nparcels = 32;
    cfg.tune_interval = true;
    cfg.min_interval_us = 1000;
    cfg.max_interval_us = 8000;
    adaptive_coalescer tuner(rt, cfg);

    for (int i = 0; i != 25 && !tuner.converged(); ++i)
    {
        traffic(rt, 200);
        tuner.tick();
    }
    EXPECT_TRUE(tuner.converged());

    // The interval dimension must have been explored: some record shows
    // a next_interval different from the starting 2000 µs.
    bool interval_explored = false;
    for (auto const& rec : tuner.history())
    {
        if (rec.next_interval_us != 2000)
            interval_explored = true;
    }
    EXPECT_TRUE(interval_explored);
    EXPECT_GE(tuner.current_interval_us(), 1000);
    EXPECT_LE(tuner.current_interval_us(), 8000);
    rt.stop();
}

TEST(AdaptiveCoalescer, IntervalStaysFixedWhenPassDisabled)
{
    coal::runtime rt(loopback_runtime());
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{8, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 10;
    cfg.max_nparcels = 32;
    adaptive_coalescer tuner(rt, cfg);

    for (int i = 0; i != 15 && !tuner.converged(); ++i)
    {
        traffic(rt, 200);
        tuner.tick();
    }
    EXPECT_EQ(tuner.current_interval_us(), 2000);
    for (auto const& rec : tuner.history())
        EXPECT_EQ(rec.next_interval_us, 2000);
    rt.stop();
}

TEST(AdaptiveCoalescer, SettlesWithinBoundedDecisions)
{
    // On the REAL cost-model network the toy workload's overhead falls
    // with nparcels, so the controller must settle in a bounded number
    // of decisions (PICS settles in ~5; allow slack for noise).
    coal::runtime_config rc;
    rc.num_localities = 2;
    rc.apply_coalescing_defaults = false;
    coal::runtime rt(rc);
    rt.enable_coalescing(
        coal::apps::toy_action_name(), coalescing_params{1, 2000});

    tuner_config cfg;
    cfg.action_name = coal::apps::toy_action_name();
    cfg.min_parcels_per_sample = 100;
    cfg.max_nparcels = 64;
    // Wide improvement threshold: each ×2 step from nparcels=1 halves
    // the message count, so real improvements dwarf 15% — this keeps VM
    // noise from triggering premature reversals.
    cfg.improvement_threshold = 0.15;
    adaptive_coalescer tuner(rt, cfg);

    int rounds = 0;
    while (!tuner.converged() && rounds < 15)
    {
        traffic(rt, 5000);
        tuner.tick();
        ++rounds;
    }
    EXPECT_TRUE(tuner.converged());
    // It must have moved off the pathological setting.
    EXPECT_GT(tuner.current_nparcels(), 1u);
    EXPECT_LE(tuner.decisions(), 15u);
    rt.stop();
}

}    // namespace
