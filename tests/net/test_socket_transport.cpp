// Socket parcelport: real TCP / Unix-domain-socket streams behind the
// transport interface.  Covers delivery and conservation over both
// families, wire-integrity containment (payload and header corruption
// injected after the CRCs are computed), forced connection drops healed
// by reconnect, the distributed barrier, and composition under the
// faulty_transport decorator.
//
// Race-labeled: sender threads race the IO thread and the corruption /
// drop seams; the tsan preset runs this binary under ThreadSanitizer.

#include <coal/net/socket_transport.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/wire_format.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

using coal::net::socket_params;
using coal::net::socket_transport;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;

socket_params tcp_params()
{
    socket_params p;
    p.kind = socket_params::family::tcp;
    p.drain_timeout_ms = 500;
    return p;
}

socket_params uds_params()
{
    socket_params p;
    p.kind = socket_params::family::uds;
    p.drain_timeout_ms = 500;
    return p;
}

byte_buffer patterned(std::size_t n, std::uint8_t seed)
{
    byte_buffer b(n);
    for (std::size_t i = 0; i != n; ++i)
        b[i] = static_cast<std::uint8_t>(seed + i * 3);
    return b;
}

/// Spin until `cond` or the timeout; returns cond's final value.
template <typename F>
bool wait_for(F cond, int timeout_ms = 5000)
{
    coal::stopwatch sw;
    while (!cond())
    {
        if (sw.elapsed_ms() > timeout_ms)
            return cond();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

void expect_conserved(coal::net::transport& t)
{
    auto const s = t.stats();
    EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
}

class SocketTransportBothFamilies
  : public ::testing::TestWithParam<socket_params::family>
{
protected:
    socket_params params() const
    {
        return GetParam() == socket_params::family::tcp ? tcp_params() :
                                                          uds_params();
    }
};

}    // namespace

TEST_P(SocketTransportBothFamilies, DeliversWithSourceAndContent)
{
    socket_transport net(params(), 3);
    std::atomic<int> delivered{0};
    std::atomic<std::uint32_t> seen_src{99};
    shared_buffer received;
    std::mutex m;

    net.set_delivery_handler(2, [&](std::uint32_t src, shared_buffer&& buf) {
        std::lock_guard lock(m);
        seen_src = src;
        received = std::move(buf);
        ++delivered;
    });

    auto const payload = patterned(1000, 7);
    net.send(0, 2, byte_buffer(payload));
    ASSERT_TRUE(wait_for([&] { return delivered.load() == 1; }));
    net.drain();

    std::lock_guard lock(m);
    EXPECT_EQ(seen_src.load(), 0u);
    EXPECT_EQ(received, payload);
    expect_conserved(net);

    auto const w = net.wire_stats();
    EXPECT_GE(w.frames_sent, 1u);
    EXPECT_GE(w.frames_received, 1u);
    EXPECT_GE(w.bytes_sent, payload.size());
    net.shutdown();
}

TEST_P(SocketTransportBothFamilies, AllPairsConservation)
{
    constexpr std::uint32_t n = 4;
    constexpr int per_pair = 50;

    socket_transport net(params(), n);
    std::atomic<std::uint64_t> delivered{0};
    for (std::uint32_t d = 0; d != n; ++d)
        net.set_delivery_handler(
            d, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    // Concurrent senders: one thread per source locality.
    std::vector<std::thread> senders;
    for (std::uint32_t s = 0; s != n; ++s)
    {
        senders.emplace_back([&, s] {
            for (int i = 0; i != per_pair; ++i)
                for (std::uint32_t d = 0; d != n; ++d)
                    net.send(s, d,
                        patterned(32 + (i % 64), static_cast<std::uint8_t>(s)));
        });
    }
    for (auto& t : senders)
        t.join();

    std::uint64_t const expected = std::uint64_t{n} * n * per_pair;
    ASSERT_TRUE(wait_for([&] { return delivered.load() == expected; }));
    net.drain();
    EXPECT_EQ(net.in_flight(), 0u);
    expect_conserved(net);
    EXPECT_EQ(net.stats().messages_dropped, 0u);
    net.shutdown();
}

TEST_P(SocketTransportBothFamilies, LargeFramesAndPartialIo)
{
    // Frames far above the socket buffer size force short writes and
    // partial reads; content must survive the resumption paths.
    socket_transport net(params(), 2);
    std::atomic<int> delivered{0};
    std::mutex m;
    std::vector<shared_buffer> received;

    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&& buf) {
        std::lock_guard lock(m);
        received.push_back(std::move(buf));
        ++delivered;
    });

    constexpr int count = 8;
    constexpr std::size_t size = 2u << 20;    // 2 MiB
    for (int i = 0; i != count; ++i)
        net.send(0, 1, patterned(size, static_cast<std::uint8_t>(i)));

    ASSERT_TRUE(wait_for([&] { return delivered.load() == count; }, 20000));
    net.drain();

    std::lock_guard lock(m);
    for (int i = 0; i != count; ++i)
    {
        ASSERT_EQ(received[i].size(), size);
        auto const expect = patterned(size, static_cast<std::uint8_t>(i));
        EXPECT_EQ(received[i], expect) << "frame " << i;
    }
    expect_conserved(net);
    net.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Families, SocketTransportBothFamilies,
    ::testing::Values(
        socket_params::family::tcp, socket_params::family::uds),
    [](auto const& param_info) {
        return param_info.param == socket_params::family::tcp ? "tcp" : "uds";
    });

TEST(SocketTransport, CorruptPayloadDroppedCountedNeverDelivered)
{
    socket_transport net(tcp_params(), 2);
    std::atomic<int> delivered{0};
    std::mutex m;
    std::vector<shared_buffer> received;

    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&& buf) {
        std::lock_guard lock(m);
        received.push_back(std::move(buf));
        ++delivered;
    });

    constexpr int count = 20;
    constexpr int corrupt = 3;
    auto const payload = patterned(512, 42);

    net.debug_corrupt_payload(corrupt);
    for (int i = 0; i != count; ++i)
        net.send(0, 1, byte_buffer(payload));

    ASSERT_TRUE(
        wait_for([&] { return delivered.load() == count - corrupt; }));
    net.drain();

    auto const w = net.wire_stats();
    EXPECT_EQ(w.crc_drops, static_cast<std::uint64_t>(corrupt));
    auto const s = net.stats();
    EXPECT_EQ(s.messages_delivered,
        static_cast<std::uint64_t>(count - corrupt));
    EXPECT_EQ(s.messages_dropped, static_cast<std::uint64_t>(corrupt));
    expect_conserved(net);

    // Zero corrupted parcels executed: every delivered payload is intact.
    std::lock_guard lock(m);
    for (auto const& r : received)
        EXPECT_EQ(r, payload);
    net.shutdown();
}

TEST(SocketTransport, CorruptHeaderCutsConnectionAndRecovers)
{
    socket_transport net(tcp_params(), 2);
    std::atomic<int> delivered{0};
    std::mutex m;
    std::vector<shared_buffer> received;

    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&& buf) {
        std::lock_guard lock(m);
        received.push_back(std::move(buf));
        ++delivered;
    });

    auto const payload = patterned(256, 9);

    // A clean frame first, then a frame with a damaged header (stream
    // desync: the receiver must cut the connection), then more traffic
    // that needs the healed connection.
    net.send(0, 1, byte_buffer(payload));
    ASSERT_TRUE(wait_for([&] { return delivered.load() == 1; }));

    net.debug_corrupt_header(1);
    for (int i = 0; i != 10; ++i)
        net.send(0, 1, byte_buffer(payload));

    // drain() settles the aftermath: surviving frames arrive over the
    // healed connection, and custody of frames that died in the kernel
    // buffers alongside the cut connection reconciles to "dropped" —
    // delivered or dropped, never executed corrupted.
    net.drain();

    auto const w = net.wire_stats();
    EXPECT_GE(w.desync_drops, 1u);
    EXPECT_GE(w.reconnects, 1u);
    expect_conserved(net);

    std::lock_guard lock(m);
    for (auto const& r : received)
        EXPECT_EQ(r, payload);
    net.shutdown();
}

TEST(SocketTransport, ForcedConnectionDropHealsByReconnect)
{
    socket_transport net(tcp_params(), 2);
    std::atomic<int> delivered{0};
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    for (int i = 0; i != 25; ++i)
        net.send(0, 1, patterned(64, 1));
    ASSERT_TRUE(wait_for([&] { return delivered.load() == 25; }));

    ASSERT_TRUE(net.debug_drop_connection(1));

    // Traffic queued after the drop must flow again over the healed
    // connection (frames racing the cut may be dropped + counted; no
    // hang, no corruption).
    for (int i = 0; i != 25; ++i)
        net.send(0, 1, patterned(64, 2));

    ASSERT_TRUE(wait_for([&] {
        auto const s = net.stats();
        return s.messages_sent == s.messages_delivered + s.messages_dropped &&
            s.messages_delivered >= 25;
    }));
    net.drain();

    EXPECT_GE(net.wire_stats().reconnects, 1u);
    expect_conserved(net);
    net.shutdown();
}

TEST(SocketTransport, DownLocalityDropsAtSendAndConserves)
{
    socket_transport net(tcp_params(), 3);
    std::atomic<int> delivered{0};
    for (std::uint32_t d = 0; d != 3; ++d)
        net.set_delivery_handler(
            d, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    net.kill_locality(2);
    for (int i = 0; i != 10; ++i)
    {
        net.send(0, 2, patterned(64, 1));    // to the dead one: dropped
        net.send(0, 1, patterned(64, 2));    // alive pair: delivered
    }
    ASSERT_TRUE(wait_for([&] { return delivered.load() == 10; }));
    net.drain();

    auto const s = net.stats();
    EXPECT_EQ(s.messages_delivered, 10u);
    EXPECT_EQ(s.messages_dropped, 10u);
    expect_conserved(net);

    // Restart: traffic flows again.
    net.restart_locality(2);
    net.send(0, 2, patterned(64, 3));
    ASSERT_TRUE(wait_for([&] { return delivered.load() == 11; }));
    net.drain();
    expect_conserved(net);
    net.shutdown();
}

TEST(SocketTransport, FaultyTransportComposesOverRealWire)
{
    // The chaos decorator must not care that the wrapped transport is a
    // real socket: seeded drops inject above the wire, conservation
    // holds at the decorator boundary.
    coal::net::fault_plan plan;
    plan.seed = 31337;
    plan.drop_probability = 0.2;

    auto inner = std::make_unique<socket_transport>(tcp_params(), 2);
    auto* wire = inner.get();
    coal::net::faulty_transport net(std::move(inner), plan);

    std::atomic<int> delivered{0};
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    constexpr int count = 200;
    for (int i = 0; i != count; ++i)
        net.send(0, 1, patterned(128, static_cast<std::uint8_t>(i)));

    ASSERT_TRUE(wait_for([&] {
        auto const s = net.stats();
        return s.messages_sent >= count &&
            s.messages_delivered + s.messages_dropped == s.messages_sent;
    }));
    net.drain();

    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent, static_cast<std::uint64_t>(count));
    EXPECT_GT(s.drops_injected, 0u);
    EXPECT_EQ(s.messages_delivered + s.messages_dropped, s.messages_sent);
    EXPECT_EQ(delivered.load(), static_cast<int>(s.messages_delivered));
    // The real wire below saw exactly the frames the decorator let pass.
    EXPECT_EQ(wire->stats().messages_sent, s.messages_delivered);
    net.shutdown();
}

TEST(SocketTransport, HandshakeDigestMismatchFailsBootstrap)
{
    // Two "processes" (both in this test process) with different
    // action-registry digests: each side rejects the other's HELLO.  The
    // rejection must be contained — connection closed *after* the decoder
    // callback returns (asan watches for the use-after-free), counted as
    // a handshake failure — and await_ready() must report failure
    // instead of hanging until the bootstrap timeout.
    std::string const tag = std::to_string(::getpid());
    socket_params pa = uds_params();
    pa.endpoints = {"/tmp/coal-hs-a-" + tag + ".sock",
        "/tmp/coal-hs-b-" + tag + ".sock"};
    pa.registry_digest = 1;
    pa.bootstrap_timeout_ms = 5000;
    socket_params pb = pa;
    pb.registry_digest = 2;

    socket_transport a(pa, 2, 0, 1);
    socket_transport b(pb, 2, 1, 1);

    EXPECT_FALSE(a.await_ready());
    EXPECT_GE(a.wire_stats().handshake_failures, 1u);
    a.shutdown();
    b.shutdown();
}

TEST(SocketTransport, StrayConnectionDoesNotFailBootstrap)
{
    // A malformed HELLO arriving on an *accepted* connection (a stray
    // client, a port scanner) must be closed and counted without
    // poisoning await_ready() for the real peers.
    socket_transport net(tcp_params(), 2);
    ASSERT_TRUE(net.await_ready());

    // Raw client: valid framing and header CRC, HELLO kind, but a
    // payload size no real peer would send.
    auto const& ep = net.endpoint_of(0);
    int const port = std::atoi(ep.c_str() + ep.rfind(':') + 1);

    int const fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ::sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<::sockaddr*>(&sa), sizeof sa), 0);

    namespace wire = coal::net::wire;
    std::uint8_t const bogus[4] = {1, 2, 3, 4};
    wire::frame_header h;
    h.kind = static_cast<std::uint8_t>(wire::frame_kind::hello);
    h.payload_len = sizeof bogus;
    h.payload_crc = wire::crc32c(bogus, sizeof bogus);
    std::uint8_t frame[wire::header_size + sizeof bogus];
    wire::encode_header(h, frame);
    std::memcpy(frame + wire::header_size, bogus, sizeof bogus);
    ASSERT_EQ(::send(fd, frame, sizeof frame, MSG_NOSIGNAL),
        static_cast<ssize_t>(sizeof frame));

    ASSERT_TRUE(wait_for(
        [&] { return net.wire_stats().handshake_failures >= 1; }));
    ::close(fd);

    // The stray client was rejected, the real peers are untouched.
    EXPECT_TRUE(net.await_ready());
    net.shutdown();
}

TEST(SocketTransport, SingleProcessBarrierIsImmediate)
{
    socket_transport net(tcp_params(), 2);
    auto const t1 = net.enter_barrier();
    EXPECT_TRUE(wait_for([&] { return net.barrier_done(t1); }, 1000));
    auto const t2 = net.enter_barrier();
    EXPECT_GT(t2, t1);
    EXPECT_TRUE(wait_for([&] { return net.barrier_done(t2); }, 1000));
    net.shutdown();
}

TEST(SocketTransport, EndpointResolutionPublishesBoundAddress)
{
    socket_transport net(tcp_params(), 2);
    // Auto mode binds ephemeral ports; the advertised endpoint must name
    // the real port, not ":0".
    for (std::uint32_t i = 0; i != 2; ++i)
    {
        auto const& ep = net.endpoint_of(i);
        EXPECT_EQ(ep.rfind("127.0.0.1:", 0), 0u) << ep;
        EXPECT_EQ(ep.find(":0"), std::string::npos) << ep;
    }
    EXPECT_EQ(net.process_count(), 2u);
    net.shutdown();
}

TEST(SocketTransport, ShutdownWithQueuedTrafficConserves)
{
    // Shutdown while frames are still queued: everything must resolve to
    // delivered-or-dropped, no hang, no leak (asan watches).
    socket_transport net(tcp_params(), 2);
    std::atomic<int> delivered{0};
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    for (int i = 0; i != 500; ++i)
        net.send(0, 1, patterned(256, static_cast<std::uint8_t>(i)));
    net.shutdown();
    expect_conserved(net);
}
