// Cost-model arithmetic: pure functions, no timing dependence.

#include <coal/net/sim_network.hpp>

#include <gtest/gtest.h>

namespace {

using coal::net::cost_model;

TEST(CostModel, TransmitTimeScalesWithSize)
{
    cost_model m;
    m.bandwidth_bytes_per_us = 1000.0;
    EXPECT_DOUBLE_EQ(m.transmit_us(0), 0.0);
    EXPECT_DOUBLE_EQ(m.transmit_us(1000), 1.0);
    EXPECT_DOUBLE_EQ(m.transmit_us(5000), 5.0);
}

TEST(CostModel, ZeroBandwidthMeansFreeTransmit)
{
    cost_model m;
    m.bandwidth_bytes_per_us = 0.0;    // "infinite" wire, modeling off
    EXPECT_DOUBLE_EQ(m.transmit_us(1 << 20), 0.0);
}

TEST(CostModel, SenderCpuHasFixedAndPerKbParts)
{
    cost_model m;
    m.send_overhead_us = 3.0;
    m.send_per_kb_us = 2.0;
    EXPECT_DOUBLE_EQ(m.sender_cpu_us(0), 3.0);
    EXPECT_DOUBLE_EQ(m.sender_cpu_us(1024), 5.0);
    EXPECT_DOUBLE_EQ(m.sender_cpu_us(2048), 7.0);
}

TEST(CostModel, CoalescingAmortizationProperty)
{
    // The core premise of the paper in cost-model terms: sending k
    // parcels of size s as ONE message costs less sender CPU than k
    // messages, and the saving is (k-1) * fixed overhead.
    cost_model m;
    m.send_overhead_us = 2.0;
    m.send_per_kb_us = 0.5;

    std::size_t const s = 64;
    for (std::size_t k : {2u, 4u, 16u, 128u})
    {
        double const separate =
            static_cast<double>(k) * m.sender_cpu_us(s);
        double const coalesced = m.sender_cpu_us(k * s);
        EXPECT_NEAR(separate - coalesced,
            static_cast<double>(k - 1) * m.send_overhead_us, 1e-9)
            << "k=" << k;
        EXPECT_LT(coalesced, separate);
    }
}

}    // namespace
