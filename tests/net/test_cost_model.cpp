// Cost-model arithmetic: pure functions, no timing dependence.

#include <coal/net/sim_network.hpp>
#include <coal/net/topology.hpp>

#include <gtest/gtest.h>

namespace {

using coal::net::cost_model;
using coal::net::link_tier;
using coal::net::topology;

TEST(CostModel, TransmitTimeScalesWithSize)
{
    cost_model m;
    m.bandwidth_bytes_per_us = 1000.0;
    EXPECT_DOUBLE_EQ(m.transmit_us(0), 0.0);
    EXPECT_DOUBLE_EQ(m.transmit_us(1000), 1.0);
    EXPECT_DOUBLE_EQ(m.transmit_us(5000), 5.0);
}

TEST(CostModel, ZeroBandwidthMeansFreeTransmit)
{
    cost_model m;
    m.bandwidth_bytes_per_us = 0.0;    // "infinite" wire, modeling off
    EXPECT_DOUBLE_EQ(m.transmit_us(1 << 20), 0.0);
}

TEST(CostModel, SenderCpuHasFixedAndPerKbParts)
{
    cost_model m;
    m.send_overhead_us = 3.0;
    m.send_per_kb_us = 2.0;
    EXPECT_DOUBLE_EQ(m.sender_cpu_us(0), 3.0);
    EXPECT_DOUBLE_EQ(m.sender_cpu_us(1024), 5.0);
    EXPECT_DOUBLE_EQ(m.sender_cpu_us(2048), 7.0);
}

TEST(CostModel, CoalescingAmortizationProperty)
{
    // The core premise of the paper in cost-model terms: sending k
    // parcels of size s as ONE message costs less sender CPU than k
    // messages, and the saving is (k-1) * fixed overhead.
    cost_model m;
    m.send_overhead_us = 2.0;
    m.send_per_kb_us = 0.5;

    std::size_t const s = 64;
    for (std::size_t k : {2u, 4u, 16u, 128u})
    {
        double const separate =
            static_cast<double>(k) * m.sender_cpu_us(s);
        double const coalesced = m.sender_cpu_us(k * s);
        EXPECT_NEAR(separate - coalesced,
            static_cast<double>(k - 1) * m.send_overhead_us, 1e-9)
            << "k=" << k;
        EXPECT_LT(coalesced, separate);
    }
}

TEST(CostModel, IntraNodeTierIsCheaperEverywhere)
{
    cost_model const inter;    // stock defaults price the NIC path
    cost_model const intra = cost_model::intra_node_defaults();
    EXPECT_LT(intra.send_overhead_us, inter.send_overhead_us);
    EXPECT_LT(intra.send_per_kb_us, inter.send_per_kb_us);
    EXPECT_LT(intra.recv_overhead_us, inter.recv_overhead_us);
    EXPECT_LT(intra.wire_latency_us, inter.wire_latency_us);
    EXPECT_GT(intra.bandwidth_bytes_per_us, inter.bandwidth_bytes_per_us);
    // Same message, both tiers: the shared-memory hop must be strictly
    // cheaper in sender CPU and wire occupancy.
    EXPECT_LT(intra.sender_cpu_us(4096), inter.sender_cpu_us(4096));
    EXPECT_LT(intra.transmit_us(4096), inter.transmit_us(4096));
}

TEST(CostModel, TopologyClassifiesLinksByTier)
{
    topology const topo{8, 2};    // nodes {0..3} and {4..7}
    ASSERT_TRUE(topo.enabled());
    EXPECT_EQ(topo.node_size(), 4u);
    EXPECT_EQ(topo.node_of(3), 0u);
    EXPECT_EQ(topo.node_of(4), 1u);
    EXPECT_EQ(topo.tier_of(0, 3), link_tier::intra_node);
    EXPECT_EQ(topo.tier_of(3, 4), link_tier::inter_node);
    EXPECT_EQ(topo.tier_of(7, 4), link_tier::intra_node);
}

TEST(CostModel, SimNetworkPricesLinksByTier)
{
    cost_model inter;
    inter.recv_overhead_us = 9.0;
    cost_model intra = cost_model::intra_node_defaults();
    intra.recv_overhead_us = 0.25;

    coal::net::sim_network net(topology{4, 2}, inter, intra);
    // Same node -> intra pricing; across the node boundary -> inter.
    EXPECT_DOUBLE_EQ(net.model_for(0, 1).recv_overhead_us, 0.25);
    EXPECT_DOUBLE_EQ(net.model_for(0, 2).recv_overhead_us, 9.0);
    EXPECT_DOUBLE_EQ(net.link_recv_overhead_us(2, 3), 0.25);
    EXPECT_DOUBLE_EQ(net.link_recv_overhead_us(1, 2), 9.0);
    // The tier-blind accessor keeps reporting the inter (default) tier.
    EXPECT_DOUBLE_EQ(net.recv_overhead_us(), 9.0);
    net.shutdown();
}

TEST(CostModel, FlatNetworkClassifiesEverythingInterNode)
{
    cost_model const m;
    coal::net::sim_network net(4, m);
    EXPECT_FALSE(net.topo().enabled());
    EXPECT_EQ(net.topo().tier_of(0, 1), link_tier::inter_node);
    EXPECT_DOUBLE_EQ(
        net.link_recv_overhead_us(0, 1), m.recv_overhead_us);
    net.shutdown();
}

}    // namespace
