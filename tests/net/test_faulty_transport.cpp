// Fault-injecting transport decorator: deterministic seeded drops,
// duplication, pairwise reordering, blackout windows, config parsing and
// the conservation invariant (sent == delivered + dropped) under all of
// them.  The loopback inner transport keeps everything synchronous.

#include <coal/net/faulty_transport.hpp>

#include <coal/common/config.hpp>
#include <coal/net/loopback.hpp>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace {

using coal::net::blackout_window;
using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::link_fault;
using coal::net::loopback_transport;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;

// Send `n` one-byte messages 0 -> 1 (payload = message index) and return
// the indices that actually arrived, in delivery order.
std::vector<int> run_indexed_sends(fault_plan const& plan, int n)
{
    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    std::vector<int> arrived;
    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&& buf) {
        ASSERT_EQ(buf.size(), 1u);
        arrived.push_back(static_cast<int>(buf[0]));
    });
    for (int i = 0; i != n; ++i)
        net.send(0, 1, byte_buffer{static_cast<std::uint8_t>(i)});
    net.drain();
    return arrived;
}

void expect_conservation(coal::net::transport_stats const& s)
{
    EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
}

TEST(FaultyTransport, DropsAreDeterministicPerSeed)
{
    fault_plan plan;
    plan.seed = 42;
    plan.drop_probability = 0.3;

    auto const first = run_indexed_sends(plan, 200);
    auto const second = run_indexed_sends(plan, 200);
    // Some but not all messages survive, and the pattern is reproducible.
    EXPECT_GT(first.size(), 0u);
    EXPECT_LT(first.size(), 200u);
    EXPECT_EQ(first, second);

    plan.seed = 43;
    auto const other_seed = run_indexed_sends(plan, 200);
    EXPECT_NE(first, other_seed);
}

TEST(FaultyTransport, DropAccountingConserves)
{
    fault_plan plan;
    plan.drop_probability = 0.5;

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    std::uint64_t delivered = 0;
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });
    for (int i = 0; i != 1000; ++i)
        net.send(0, 1, byte_buffer{1});
    net.drain();

    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent, 1000u);
    EXPECT_GT(s.drops_injected, 0u);
    EXPECT_EQ(s.messages_dropped, s.drops_injected);
    EXPECT_EQ(s.messages_delivered, delivered);
    expect_conservation(s);
}

TEST(FaultyTransport, LinkOverrideReplacesGlobalRate)
{
    fault_plan plan;
    plan.drop_probability = 1.0;
    plan.link_overrides.push_back(link_fault{0, 1, 0.0});

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    int to1 = 0, to0 = 0;
    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&&) { ++to1; });
    net.set_delivery_handler(0, [&](std::uint32_t, shared_buffer&&) { ++to0; });

    for (int i = 0; i != 10; ++i)
    {
        net.send(0, 1, byte_buffer{1});    // exempted link: all pass
        net.send(1, 0, byte_buffer{1});    // global rate: all dropped
    }
    net.drain();
    EXPECT_EQ(to1, 10);
    EXPECT_EQ(to0, 0);
    EXPECT_EQ(net.stats().drops_injected, 10u);
    expect_conservation(net.stats());
}

TEST(FaultyTransport, DuplicationForgesCountedExtraCopies)
{
    fault_plan plan;
    plan.duplicate_probability = 1.0;

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    std::uint64_t delivered = 0;
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });
    for (int i = 0; i != 100; ++i)
        net.send(0, 1, byte_buffer{1, 2});
    net.drain();

    auto const s = net.stats();
    EXPECT_EQ(delivered, 200u);
    EXPECT_EQ(s.duplicates_injected, 100u);
    // The forged copy is an extra sent message: conservation still holds.
    EXPECT_EQ(s.messages_sent, 200u);
    expect_conservation(s);
}

TEST(FaultyTransport, ReorderSwapsAdjacentDeliveries)
{
    fault_plan plan;
    plan.reorder_probability = 1.0;

    // Every first delivery on the link is parked and released after the
    // next one: 0,1,2,3,4,5 arrives as 1,0,3,2,5,4.
    auto const arrived = run_indexed_sends(plan, 6);
    EXPECT_EQ(arrived, (std::vector<int>{1, 0, 3, 2, 5, 4}));
}

TEST(FaultyTransport, DrainReleasesParkedMessages)
{
    fault_plan plan;
    plan.reorder_probability = 1.0;

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    int delivered = 0;
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    net.send(0, 1, byte_buffer{7});
    // The lone message sits in the reorder slot with no follower.
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(net.in_flight(), 1u);

    net.drain();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(net.in_flight(), 0u);
    expect_conservation(net.stats());
}

TEST(FaultyTransport, ShutdownDropsParkedMessages)
{
    fault_plan plan;
    plan.reorder_probability = 1.0;

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    net.set_delivery_handler(1, [](std::uint32_t, shared_buffer&&) {});
    net.send(0, 1, byte_buffer{7});    // parked
    net.shutdown();

    auto s = net.stats();
    EXPECT_EQ(s.messages_dropped, 1u);
    expect_conservation(s);

    // Post-shutdown sends stay visible as drops too.
    net.send(0, 1, byte_buffer{8});
    s = net.stats();
    EXPECT_EQ(s.messages_sent, 2u);
    EXPECT_EQ(s.messages_dropped, 2u);
    expect_conservation(s);
}

TEST(FaultyTransport, BlackoutWindowDropsMatchingLinkOnly)
{
    fault_plan plan;
    blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.start_us = 0;
    w.end_us = 60'000'000;    // effectively "for the whole test"
    plan.blackouts.push_back(w);

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    int to1 = 0, to0 = 0;
    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&&) { ++to1; });
    net.set_delivery_handler(0, [&](std::uint32_t, shared_buffer&&) { ++to0; });

    net.send(0, 1, byte_buffer{1});    // inside the partition
    net.send(1, 0, byte_buffer{1});    // reverse direction unaffected
    net.drain();

    EXPECT_EQ(to1, 0);
    EXPECT_EQ(to0, 1);
    EXPECT_EQ(net.stats().drops_injected, 1u);
    expect_conservation(net.stats());
}

TEST(FaultyTransport, BlackoutWindowEnds)
{
    fault_plan plan;
    blackout_window w;
    w.start_us = 0;
    w.end_us = 30'000;    // 30 ms, wildcard links
    plan.blackouts.push_back(w);

    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    int delivered = 0;
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    net.send(0, 1, byte_buffer{1});
    EXPECT_EQ(delivered, 0);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    net.send(0, 1, byte_buffer{2});
    net.drain();
    EXPECT_EQ(delivered, 1);
    expect_conservation(net.stats());
}

TEST(FaultyTransport, StatsRollUpInnerDrops)
{
    // No handler registered on the inner loopback for locality 1: the
    // wrapper's interposed handler exists, but the wrapper itself has no
    // user handler, so the drop lands at the decorator level; either way
    // the rolled-up stats must balance.
    faulty_transport net(std::make_unique<loopback_transport>(2), fault_plan{});
    net.send(0, 1, byte_buffer{1});
    net.drain();
    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent, 1u);
    EXPECT_EQ(s.messages_delivered, 0u);
    EXPECT_EQ(s.messages_dropped, 1u);
    expect_conservation(s);
}

TEST(FaultyTransport, NonOwningConstructorSharesInner)
{
    loopback_transport inner(2);
    fault_plan plan;
    plan.drop_probability = 1.0;
    faulty_transport net(inner, plan);
    net.set_delivery_handler(1, [](std::uint32_t, shared_buffer&&) {});

    net.send(0, 1, byte_buffer{1});
    EXPECT_EQ(net.stats().drops_injected, 1u);
    // The inner transport never saw the dropped message.
    EXPECT_EQ(inner.stats().messages_sent, 0u);
}

TEST(FaultyTransport, DefaultPlanIsInactive)
{
    fault_plan plan;
    EXPECT_FALSE(plan.active());
    plan.duplicate_probability = 0.1;
    EXPECT_TRUE(plan.active());
}

TEST(FaultyTransport, FromConfigParsesFaultKeys)
{
    coal::config cfg;
    cfg.set("fault.seed", "7");
    cfg.set("fault.drop", "0.25");
    cfg.set("fault.duplicate", "0.5");
    cfg.set("fault.reorder", "0.125");
    cfg.set("fault.blackout.start_us", "10");
    cfg.set("fault.blackout.end_us", "20");
    cfg.set("fault.blackout.src", "1");

    auto const plan = fault_plan::from_config(cfg);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.drop_probability, 0.25);
    EXPECT_DOUBLE_EQ(plan.duplicate_probability, 0.5);
    EXPECT_DOUBLE_EQ(plan.reorder_probability, 0.125);
    ASSERT_EQ(plan.blackouts.size(), 1u);
    EXPECT_EQ(plan.blackouts[0].start_us, 10);
    EXPECT_EQ(plan.blackouts[0].end_us, 20);
    EXPECT_EQ(plan.blackouts[0].src, 1u);
    EXPECT_EQ(plan.blackouts[0].dst, blackout_window::any_locality);
    EXPECT_TRUE(plan.active());
}

TEST(FaultyTransport, FromConfigRejectsEmptyBlackout)
{
    coal::config cfg;
    cfg.set("fault.blackout.end_us", "0");    // end <= start: ignored
    auto const plan = fault_plan::from_config(cfg);
    EXPECT_TRUE(plan.blackouts.empty());
    EXPECT_FALSE(plan.active());
}

TEST(FaultyTransport, SeedEnvOverrideWins)
{
    // COAL_FAULT_SEED replays a failed chaos run exactly; unparsable
    // values fall back (with a warning) instead of silently reseeding.
    ASSERT_EQ(::setenv("COAL_FAULT_SEED", "31337", 1), 0);
    EXPECT_EQ(fault_plan::resolve_seed(7), 31337u);
    ASSERT_EQ(::setenv("COAL_FAULT_SEED", "not-a-seed", 1), 0);
    EXPECT_EQ(fault_plan::resolve_seed(7), 7u);
    ASSERT_EQ(::unsetenv("COAL_FAULT_SEED"), 0);
    EXPECT_EQ(fault_plan::resolve_seed(7), 7u);
}

TEST(FaultyTransport, KilledLocalityBlackholesBothDirections)
{
    faulty_transport net(std::make_unique<loopback_transport>(2), fault_plan{});
    int arrived0 = 0, arrived1 = 0;
    net.set_delivery_handler(
        0, [&](std::uint32_t, shared_buffer&&) { ++arrived0; });
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++arrived1; });

    net.send(0, 1, byte_buffer{1});
    net.drain();
    EXPECT_EQ(arrived1, 1);

    // While locality 1 is down, traffic to AND from it is blackholed —
    // counted as drops, never delivered.
    EXPECT_TRUE(net.kill_locality(1));
    net.send(0, 1, byte_buffer{2});
    net.send(1, 0, byte_buffer{3});
    net.drain();
    EXPECT_EQ(arrived1, 1);
    EXPECT_EQ(arrived0, 0);
    EXPECT_EQ(net.stats().messages_dropped, 2u);
    expect_conservation(net.stats());

    // Restart restores the wire in both directions.
    EXPECT_TRUE(net.restart_locality(1));
    net.send(0, 1, byte_buffer{4});
    net.send(1, 0, byte_buffer{5});
    net.drain();
    EXPECT_EQ(arrived1, 2);
    EXPECT_EQ(arrived0, 1);
    expect_conservation(net.stats());
}

TEST(FaultyTransport, KillDropsReorderParkedFrames)
{
    // A frame parked by the reorderer on a link of the killed locality
    // dies with the kill instead of resurfacing after the restart.
    fault_plan plan;
    plan.reorder_probability = 1.0;
    faulty_transport net(std::make_unique<loopback_transport>(2), plan);
    int arrived = 0;
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++arrived; });

    net.send(0, 1, byte_buffer{1});    // parked, waiting for a successor
    EXPECT_TRUE(net.kill_locality(1));
    EXPECT_TRUE(net.restart_locality(1));
    net.drain();
    EXPECT_EQ(arrived, 0);
    expect_conservation(net.stats());
}

}    // namespace
