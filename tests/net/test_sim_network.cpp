// Simulated interconnect: delivery, ordering, latency, stats, drain and
// shutdown behaviour.

#include <coal/net/sim_network.hpp>

#include <coal/common/stopwatch.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using coal::net::cost_model;
using coal::net::sim_network;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;

cost_model cheap_model()
{
    cost_model m;
    m.send_overhead_us = 0.0;
    m.send_per_kb_us = 0.0;
    m.recv_overhead_us = 0.0;
    m.wire_latency_us = 0.0;
    m.bandwidth_bytes_per_us = 0.0;    // free transmit
    return m;
}

byte_buffer make_payload(std::size_t n, std::uint8_t fill)
{
    return byte_buffer(n, fill);
}

TEST(SimNetwork, DeliversToCorrectHandlerWithSource)
{
    sim_network net(3, cheap_model());
    std::atomic<int> delivered{0};
    std::atomic<std::uint32_t> seen_src{99};

    net.set_delivery_handler(2, [&](std::uint32_t src, shared_buffer&& buf) {
        seen_src = src;
        EXPECT_EQ(buf.size(), 10u);
        ++delivered;
    });
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ADD_FAILURE(); });

    net.send(0, 2, make_payload(10, 0xab));
    net.drain();
    EXPECT_EQ(delivered.load(), 1);
    EXPECT_EQ(seen_src.load(), 0u);
}

TEST(SimNetwork, PayloadContentSurvives)
{
    sim_network net(2, cheap_model());
    shared_buffer received;
    std::mutex m;

    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&& buf) {
        std::lock_guard lock(m);
        received = std::move(buf);
    });

    byte_buffer payload{1, 2, 3, 4, 5};
    net.send(0, 1, byte_buffer(payload));
    net.drain();
    std::lock_guard lock(m);
    EXPECT_EQ(received, payload);
}

TEST(SimNetwork, PerLinkFifoOrder)
{
    sim_network net(2, cheap_model());
    std::vector<std::uint8_t> order;
    std::mutex m;

    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&& buf) {
        std::lock_guard lock(m);
        order.push_back(buf[0]);
    });

    for (std::uint8_t i = 0; i != 50; ++i)
        net.send(0, 1, make_payload(4, i));
    net.drain();

    std::lock_guard lock(m);
    ASSERT_EQ(order.size(), 50u);
    for (std::uint8_t i = 0; i != 50; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SimNetwork, LatencyDelaysDelivery)
{
    cost_model m = cheap_model();
    m.wire_latency_us = 20000;    // 20 ms
    sim_network net(2, m);

    std::atomic<std::int64_t> delivered_at{0};
    net.set_delivery_handler(1, [&](std::uint32_t, shared_buffer&&) {
        delivered_at = coal::now_us();
    });

    std::int64_t const sent_at = coal::now_us();
    net.send(0, 1, make_payload(8, 1));
    net.drain();
    EXPECT_GE(delivered_at.load() - sent_at, 20000);
}

TEST(SimNetwork, BandwidthSerializesLink)
{
    cost_model m = cheap_model();
    m.bandwidth_bytes_per_us = 10.0;    // 10 bytes/µs: 1000 B = 100 µs
    sim_network net(2, m);

    std::atomic<int> delivered{0};
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    coal::stopwatch sw;
    for (int i = 0; i != 10; ++i)
        net.send(0, 1, make_payload(1000, 2));
    net.drain();
    // 10 messages × 100 µs serialized transmission = at least 1 ms.
    EXPECT_GE(sw.elapsed_us(), 1000);
    EXPECT_EQ(delivered.load(), 10);
}

TEST(SimNetwork, SenderCpuCostBurnsOnCallingThread)
{
    cost_model m = cheap_model();
    m.send_overhead_us = 500.0;
    sim_network net(2, m);
    net.set_delivery_handler(1, [](std::uint32_t, shared_buffer&&) {});

    coal::stopwatch sw;
    net.send(0, 1, make_payload(4, 0));
    // send() itself must have taken >= 500 µs of caller time.
    EXPECT_GE(sw.elapsed_us(), 500);
    net.drain();
}

TEST(SimNetwork, StatsCountMessagesAndBytes)
{
    sim_network net(2, cheap_model());
    net.set_delivery_handler(1, [](std::uint32_t, shared_buffer&&) {});
    net.set_delivery_handler(0, [](std::uint32_t, shared_buffer&&) {});

    net.send(0, 1, make_payload(100, 0));
    net.send(0, 1, make_payload(50, 0));
    net.send(1, 0, make_payload(7, 0));
    net.drain();

    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent, 3u);
    EXPECT_EQ(s.bytes_sent, 157u);
    EXPECT_EQ(s.messages_delivered, 3u);
    EXPECT_EQ(s.bytes_delivered, 157u);

    EXPECT_EQ(net.link(0, 1).messages, 2u);
    EXPECT_EQ(net.link(0, 1).bytes, 150u);
    EXPECT_EQ(net.link(1, 0).messages, 1u);
    EXPECT_EQ(net.link(1, 1).messages, 0u);
}

TEST(SimNetwork, InFlightAndDrain)
{
    cost_model m = cheap_model();
    m.wire_latency_us = 30000;
    sim_network net(2, m);
    net.set_delivery_handler(1, [](std::uint32_t, shared_buffer&&) {});

    net.send(0, 1, make_payload(4, 0));
    EXPECT_EQ(net.in_flight(), 1u);
    net.drain();
    EXPECT_EQ(net.in_flight(), 0u);
}

TEST(SimNetwork, MissingHandlerDropsWithoutCrash)
{
    sim_network net(2, cheap_model());
    net.send(0, 1, make_payload(4, 0));
    net.drain();    // message dropped, in_flight still reaches 0
    EXPECT_EQ(net.in_flight(), 0u);
}

TEST(SimNetwork, SendAfterShutdownIsIgnored)
{
    sim_network net(2, cheap_model());
    std::atomic<int> delivered{0};
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });
    net.shutdown();
    net.send(0, 1, make_payload(4, 0));
    EXPECT_EQ(delivered.load(), 0);
}

TEST(SimNetwork, ConcurrentSendersConserveMessages)
{
    sim_network net(4, cheap_model());
    std::atomic<int> delivered{0};
    for (std::uint32_t d = 0; d != 4; ++d)
        net.set_delivery_handler(
            d, [&](std::uint32_t, shared_buffer&&) { ++delivered; });

    constexpr int per_thread = 2000;
    std::vector<std::thread> senders;
    for (std::uint32_t t = 0; t != 3; ++t)
    {
        senders.emplace_back([&net, t] {
            for (int i = 0; i != per_thread; ++i)
                net.send(t, (t + 1) % 4, byte_buffer{1, 2, 3});
        });
    }
    for (auto& s : senders)
        s.join();
    net.drain();
    EXPECT_EQ(delivered.load(), 3 * per_thread);
}

}    // namespace
