// Wire-format framing and decoder-containment tests.
//
// The containment contract under test (wire_format.hpp): whatever bytes
// are fed — truncated, bit-flipped, oversized length prefixes, random
// garbage — the decoder never throws, never delivers a frame whose CRC
// does not match, never allocates a payload larger than the frame cap,
// and counts every rejection.

#include <coal/net/wire_format.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

using namespace coal;
using namespace coal::net::wire;

namespace {

struct decoded
{
    std::vector<std::pair<frame_header, serialization::byte_buffer>> frames;
    std::vector<decode_error> errors;
};

struct harness
{
    decoded out;
    frame_decoder dec;

    explicit harness(std::size_t cap = 1 << 20)
      : dec(cap,
            [this](frame_header const& h, serialization::shared_buffer&& p) {
                out.frames.emplace_back(h, p.to_vector());
            },
            [this](decode_error e) { out.errors.push_back(e); })
    {
    }
};

serialization::byte_buffer make_frame(std::uint8_t kind, std::uint32_t src,
    std::uint32_t dst, serialization::byte_buffer const& payload,
    std::uint32_t seq = 0)
{
    frame_header h;
    h.kind = kind;
    h.src = src;
    h.dst = dst;
    h.payload_len = static_cast<std::uint32_t>(payload.size());
    h.payload_crc = crc32c(payload.data(), payload.size());
    h.seq = seq;

    serialization::byte_buffer bytes(header_size + payload.size());
    encode_header(h, bytes.data());
    std::memcpy(bytes.data() + header_size, payload.data(), payload.size());
    return bytes;
}

}    // namespace

TEST(wire_format, crc32c_known_vectors)
{
    // RFC 3720 / iSCSI test vector: "123456789" -> 0xe3069283.
    EXPECT_EQ(crc32c("123456789", 9), 0xe3069283u);
    // All-zero block vector (32 zero bytes -> 0x8a9136aa).
    std::uint8_t zeros[32] = {};
    EXPECT_EQ(crc32c(zeros, sizeof zeros), 0x8a9136aau);
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(wire_format, roundtrip_single_frame)
{
    harness h;
    serialization::byte_buffer const payload{1, 2, 3, 4, 5};
    auto const bytes = make_frame(1, 3, 7, payload, 42);

    EXPECT_TRUE(h.dec.feed(bytes.data(), bytes.size()));
    ASSERT_EQ(h.out.frames.size(), 1u);
    EXPECT_TRUE(h.out.errors.empty());

    auto const& [hdr, body] = h.out.frames[0];
    EXPECT_EQ(hdr.kind, 1);
    EXPECT_EQ(hdr.src, 3u);
    EXPECT_EQ(hdr.dst, 7u);
    EXPECT_EQ(hdr.seq, 42u);
    EXPECT_EQ(body, payload);
}

TEST(wire_format, roundtrip_byte_at_a_time)
{
    harness h;
    serialization::byte_buffer payload(300);
    for (std::size_t i = 0; i != payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);
    auto const bytes = make_frame(1, 0, 1, payload);

    for (std::uint8_t const b : bytes)
        ASSERT_TRUE(h.dec.feed(&b, 1));
    ASSERT_EQ(h.out.frames.size(), 1u);
    EXPECT_EQ(h.out.frames[0].second, payload);
    EXPECT_EQ(h.dec.buffered_bytes(), 0u);
}

TEST(wire_format, multiple_frames_one_read)
{
    harness h;
    serialization::byte_buffer stream;
    for (std::uint32_t i = 0; i != 8; ++i)
    {
        serialization::byte_buffer payload(i * 13);
        for (std::size_t j = 0; j != payload.size(); ++j)
            payload[j] = static_cast<std::uint8_t>(i + j);
        auto const f = make_frame(1, i, i + 1, payload, i);
        stream.insert(stream.end(), f.begin(), f.end());
    }
    EXPECT_TRUE(h.dec.feed(stream.data(), stream.size()));
    EXPECT_EQ(h.out.frames.size(), 8u);
    EXPECT_TRUE(h.out.errors.empty());
}

TEST(wire_format, zero_length_payload)
{
    harness h;
    auto const bytes = make_frame(5, 0, 0, {});
    EXPECT_TRUE(h.dec.feed(bytes.data(), bytes.size()));
    ASSERT_EQ(h.out.frames.size(), 1u);
    EXPECT_TRUE(h.out.frames[0].second.empty());
}

TEST(wire_format, payload_bit_flip_drops_only_that_frame)
{
    harness h;
    serialization::byte_buffer const payload{10, 20, 30, 40};
    auto bad = make_frame(1, 0, 1, payload);
    bad[header_size + 2] ^= 0x01;    // damage the payload
    auto const good = make_frame(1, 0, 1, payload, 1);

    EXPECT_TRUE(h.dec.feed(bad.data(), bad.size()));
    EXPECT_TRUE(h.dec.feed(good.data(), good.size()));

    // Stream stays aligned: the damaged frame dropped, the next delivered.
    ASSERT_EQ(h.out.frames.size(), 1u);
    EXPECT_EQ(h.out.frames[0].first.seq, 1u);
    ASSERT_EQ(h.out.errors.size(), 1u);
    EXPECT_EQ(h.out.errors[0], decode_error::bad_payload_crc);
    EXPECT_EQ(h.dec.stats().crc_drops, 1u);
    EXPECT_FALSE(h.dec.failed());
}

TEST(wire_format, header_bit_flips_never_deliver_and_are_fatal)
{
    // Flip every bit position of the header in turn: none may produce a
    // delivered frame with wrong content, and all must be rejected
    // (header CRC / magic / version / flags).
    serialization::byte_buffer const payload{1, 2, 3};
    auto const pristine = make_frame(1, 4, 5, payload, 9);

    for (std::size_t byte = 0; byte != header_size; ++byte)
    {
        for (int bit = 0; bit != 8; ++bit)
        {
            harness h;
            auto corrupt = pristine;
            corrupt[byte] ^= static_cast<std::uint8_t>(1 << bit);

            bool const ok = h.dec.feed(corrupt.data(), corrupt.size());
            ASSERT_FALSE(ok) << "byte " << byte << " bit " << bit;
            ASSERT_TRUE(h.dec.failed());
            ASSERT_TRUE(h.out.frames.empty());
            ASSERT_EQ(h.out.errors.size(), 1u);
            // After a fatal error further input is refused.
            ASSERT_FALSE(h.dec.feed(pristine.data(), pristine.size()));
            ASSERT_TRUE(h.out.frames.empty());
        }
    }
}

TEST(wire_format, oversized_length_prefix_rejected_before_allocation)
{
    // A valid header (CRC intact) whose length exceeds the cap must be
    // rejected as oversized — and because the decoder checks the cap
    // before allocating, feeding just the header cannot allocate 4 GiB.
    harness h(4096);

    frame_header hdr;
    hdr.kind = 1;
    hdr.payload_len = 0xfffffff0u;
    hdr.payload_crc = 0;

    std::uint8_t bytes[header_size];
    encode_header(hdr, bytes);

    EXPECT_FALSE(h.dec.feed(bytes, sizeof bytes));
    ASSERT_EQ(h.out.errors.size(), 1u);
    EXPECT_EQ(h.out.errors[0], decode_error::oversized);
    EXPECT_EQ(h.dec.stats().oversized_drops, 1u);
    EXPECT_TRUE(h.out.frames.empty());
}

TEST(wire_format, truncated_stream_counted_on_finish)
{
    harness h;
    serialization::byte_buffer const payload{1, 2, 3, 4, 5, 6, 7, 8};
    auto const bytes = make_frame(1, 0, 1, payload);

    // Cut the stream at every possible interior offset.
    for (std::size_t cut = 1; cut != bytes.size(); ++cut)
    {
        harness t;
        ASSERT_TRUE(t.dec.feed(bytes.data(), cut));
        t.dec.finish();
        ASSERT_TRUE(t.out.frames.empty()) << "cut " << cut;
        ASSERT_EQ(t.out.errors.size(), 1u) << "cut " << cut;
        ASSERT_EQ(t.out.errors[0], decode_error::truncated);
        ASSERT_EQ(t.dec.stats().truncated_drops, 1u);
    }

    // A clean boundary is not a truncation.
    ASSERT_TRUE(h.dec.feed(bytes.data(), bytes.size()));
    h.dec.finish();
    EXPECT_TRUE(h.out.errors.empty());
}

TEST(wire_format, random_garbage_never_delivers)
{
    // Pure noise: the odds of a random 32-byte block passing magic +
    // header CRC are negligible; the decoder must reject without
    // delivering and without unbounded buffering.
    std::mt19937 rng(1234);
    for (int round = 0; round != 64; ++round)
    {
        harness h(4096);
        serialization::byte_buffer noise(512);
        for (auto& b : noise)
            b = static_cast<std::uint8_t>(rng());

        h.dec.feed(noise.data(), noise.size());
        EXPECT_TRUE(h.out.frames.empty());
        EXPECT_TRUE(h.dec.failed());
        EXPECT_LE(h.dec.buffered_bytes(), header_size + 4096);
    }
}

TEST(wire_format, fuzz_mutated_frame_streams_contained)
{
    // Fuzz: build a small valid stream, then mutate random bytes and feed
    // in random-sized chunks.  Invariants: no delivered frame may differ
    // from an original (CRC catches content damage), errors are counted,
    // buffered bytes stay bounded.  Seeded — failures reproduce.
    std::mt19937 rng(98765);

    for (int round = 0; round != 200; ++round)
    {
        serialization::byte_buffer stream;
        std::vector<serialization::byte_buffer> payloads;
        std::uniform_int_distribution<int> nframes(1, 4);
        std::uniform_int_distribution<int> plen(0, 200);
        int const n = nframes(rng);
        for (int i = 0; i != n; ++i)
        {
            serialization::byte_buffer payload(
                static_cast<std::size_t>(plen(rng)));
            for (auto& b : payload)
                b = static_cast<std::uint8_t>(rng());
            payloads.push_back(payload);
            auto const f = make_frame(1, 0, 1, payload,
                static_cast<std::uint32_t>(i));
            stream.insert(stream.end(), f.begin(), f.end());
        }

        // Mutate a few random bytes (possibly none).
        std::uniform_int_distribution<int> nmut(0, 3);
        int const muts = nmut(rng);
        for (int i = 0; i != muts; ++i)
        {
            std::uniform_int_distribution<std::size_t> pos(
                0, stream.size() - 1);
            stream[pos(rng)] ^= static_cast<std::uint8_t>(1 + (rng() % 255));
        }

        harness h(4096);
        std::size_t off = 0;
        while (off < stream.size())
        {
            std::uniform_int_distribution<std::size_t> chunk(
                1, stream.size() - off);
            std::size_t const take = chunk(rng);
            if (!h.dec.feed(stream.data() + off, take))
                break;    // fatal: connection would drop here
            off += take;
            ASSERT_LE(h.dec.buffered_bytes(), header_size + 4096);
        }
        h.dec.finish();

        // Every delivered frame must byte-match one of the originals.
        for (auto const& [hdr, body] : h.out.frames)
        {
            bool matched = false;
            for (auto const& p : payloads)
                matched = matched || body == p;
            ASSERT_TRUE(matched)
                << "round " << round << " delivered a corrupted frame";
        }
        // Conservation: frames delivered + errors >= 1 when anything was
        // fed, and with no mutations everything is delivered.
        if (muts == 0)
        {
            ASSERT_EQ(h.out.frames.size(), payloads.size());
            ASSERT_TRUE(h.out.errors.empty());
        }
    }
}

TEST(wire_format, reset_recovers_a_failed_decoder)
{
    harness h;
    serialization::byte_buffer garbage(64, 0xaa);
    EXPECT_FALSE(h.dec.feed(garbage.data(), garbage.size()));
    EXPECT_TRUE(h.dec.failed());

    h.dec.reset();
    EXPECT_FALSE(h.dec.failed());

    auto const good = make_frame(1, 0, 1, {9, 8, 7});
    EXPECT_TRUE(h.dec.feed(good.data(), good.size()));
    ASSERT_EQ(h.out.frames.size(), 1u);
}
