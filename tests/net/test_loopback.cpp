#include <coal/net/loopback.hpp>

#include <gtest/gtest.h>

namespace {

using coal::net::loopback_transport;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;

TEST(Loopback, SynchronousDelivery)
{
    loopback_transport net(2);
    int delivered = 0;
    net.set_delivery_handler(1, [&](std::uint32_t src, shared_buffer&& buf) {
        EXPECT_EQ(src, 0u);
        EXPECT_EQ(buf.size(), 3u);
        ++delivered;
    });

    net.send(0, 1, byte_buffer{1, 2, 3});
    // No drain needed: delivery happened inside send().
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(net.in_flight(), 0u);
}

TEST(Loopback, ZeroModeledCosts)
{
    loopback_transport net(2);
    EXPECT_DOUBLE_EQ(net.recv_overhead_us(), 0.0);
}

TEST(Loopback, StatsMirrorTraffic)
{
    loopback_transport net(2);
    net.set_delivery_handler(0, [](std::uint32_t, shared_buffer&&) {});
    net.send(1, 0, byte_buffer(10, 0));
    net.send(1, 0, byte_buffer(20, 0));
    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent, 2u);
    EXPECT_EQ(s.bytes_sent, 30u);
    EXPECT_EQ(s.messages_delivered, 2u);
}

TEST(Loopback, ShutdownStopsDelivery)
{
    loopback_transport net(2);
    int delivered = 0;
    net.set_delivery_handler(
        1, [&](std::uint32_t, shared_buffer&&) { ++delivered; });
    net.shutdown();
    net.send(0, 1, byte_buffer{1});
    EXPECT_EQ(delivered, 0);
}

TEST(Loopback, MissingHandlerIsSafe)
{
    loopback_transport net(2);
    net.send(0, 1, byte_buffer{1});    // no handler installed: dropped
    EXPECT_EQ(net.stats().messages_sent, 1u);
}

TEST(Loopback, DrainIsImmediate)
{
    loopback_transport net(1);
    net.drain();    // no-op by construction
    SUCCEED();
}

}    // namespace
