// Shutdown/drain races, written to run under TSan (ctest -L race): many
// sender threads hammer a transport while the main thread tears it down.
// Whatever interleaving happens, accounting must stay conserved:
// sent == delivered + dropped once everything is quiet.

#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/net/sim_network.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace {

using coal::net::cost_model;
using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::net::sim_network;
using coal::net::transport;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;

constexpr int senders = 4;
constexpr int sends_per_thread = 2000;

// Spawn sender threads against `net`, shut the transport down while they
// are still sending, then check conservation.
void hammer_and_shutdown(transport& net, std::uint32_t num_localities,
    std::atomic<std::uint64_t>& delivered)
{
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(senders);
    for (int t = 0; t != senders; ++t)
    {
        threads.emplace_back([&net, &go, t, num_localities] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            auto const src = static_cast<std::uint32_t>(t) % num_localities;
            auto const dst = (src + 1) % num_localities;
            for (int i = 0; i != sends_per_thread; ++i)
                net.send(src, dst, byte_buffer{1, 2, 3});
        });
    }

    go.store(true, std::memory_order_release);
    // Let some traffic through, then yank the transport out from under
    // the senders mid-stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    net.shutdown();

    for (auto& t : threads)
        t.join();

    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent,
        static_cast<std::uint64_t>(senders) * sends_per_thread);
    EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
    EXPECT_EQ(s.messages_delivered, delivered.load());
}

TEST(TransportRaces, LoopbackShutdownConservesAccounting)
{
    loopback_transport net(2);
    std::atomic<std::uint64_t> delivered{0};
    for (std::uint32_t d = 0; d != 2; ++d)
    {
        net.set_delivery_handler(
            d, [&delivered](std::uint32_t, shared_buffer&&) { ++delivered; });
    }
    hammer_and_shutdown(net, 2, delivered);
}

TEST(TransportRaces, SimNetworkShutdownConservesAccounting)
{
    // Near-zero modeled costs so the delivery thread keeps up and the
    // race window sits in the queue/shutdown machinery, not in spinning.
    cost_model model;
    model.send_overhead_us = 0.0;
    model.send_per_kb_us = 0.0;
    model.recv_overhead_us = 0.0;
    model.wire_latency_us = 0.0;
    model.bandwidth_bytes_per_us = 1e9;

    sim_network net(4, model);
    std::atomic<std::uint64_t> delivered{0};
    for (std::uint32_t d = 0; d != 4; ++d)
    {
        net.set_delivery_handler(
            d, [&delivered](std::uint32_t, shared_buffer&&) { ++delivered; });
    }
    hammer_and_shutdown(net, 4, delivered);
    // Messages still queued at shutdown were dropped, so a late drain()
    // must return instead of hanging on them.
    net.drain();
}

TEST(TransportRaces, FaultySimShutdownConservesAccounting)
{
    cost_model model;
    model.send_overhead_us = 0.0;
    model.send_per_kb_us = 0.0;
    model.recv_overhead_us = 0.0;
    model.wire_latency_us = 0.0;
    model.bandwidth_bytes_per_us = 1e9;

    fault_plan plan;
    plan.drop_probability = 0.05;
    plan.duplicate_probability = 0.05;
    plan.reorder_probability = 0.05;

    faulty_transport net(std::make_unique<sim_network>(4, model), plan);
    std::atomic<std::uint64_t> delivered{0};
    for (std::uint32_t d = 0; d != 4; ++d)
    {
        net.set_delivery_handler(
            d, [&delivered](std::uint32_t, shared_buffer&&) { ++delivered; });
    }

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t != senders; ++t)
    {
        threads.emplace_back([&net, &go, t] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            auto const src = static_cast<std::uint32_t>(t) % 4;
            auto const dst = (src + 1) % 4;
            for (int i = 0; i != sends_per_thread; ++i)
                net.send(src, dst, byte_buffer{1, 2, 3});
        });
    }
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    net.shutdown();
    for (auto& t : threads)
        t.join();

    // Duplicates inflate messages_sent, so only conservation (not the
    // exact sent count) is checkable here.
    auto const s = net.stats();
    EXPECT_GE(s.messages_sent,
        static_cast<std::uint64_t>(senders) * sends_per_thread);
    EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
    EXPECT_EQ(s.messages_delivered, delivered.load());
}

TEST(TransportRaces, ConcurrentDrainAndSendsConserve)
{
    loopback_transport inner(2);
    fault_plan plan;
    plan.reorder_probability = 0.2;
    faulty_transport net(inner, plan);
    std::atomic<std::uint64_t> delivered{0};
    for (std::uint32_t d = 0; d != 2; ++d)
    {
        net.set_delivery_handler(
            d, [&delivered](std::uint32_t, shared_buffer&&) { ++delivered; });
    }

    std::atomic<bool> done{false};
    std::thread drainer([&] {
        while (!done.load(std::memory_order_acquire))
            net.drain();
    });

    std::vector<std::thread> threads;
    for (int t = 0; t != senders; ++t)
    {
        threads.emplace_back([&net, t] {
            auto const src = static_cast<std::uint32_t>(t) % 2;
            for (int i = 0; i != sends_per_thread; ++i)
                net.send(src, 1 - src, byte_buffer{1});
        });
    }
    for (auto& t : threads)
        t.join();
    done.store(true, std::memory_order_release);
    drainer.join();
    net.drain();

    auto const s = net.stats();
    EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
    EXPECT_EQ(s.messages_delivered, delivered.load());
    EXPECT_EQ(net.in_flight(), 0u);
}

}    // namespace
