// Collectives built on the parcel layer: broadcast, gather, reduce,
// all_to_all — correctness, tag isolation, coalesced-traffic behaviour,
// and no leaked mailbox slots.

#include <coal/collectives/collectives.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>

namespace {

using coal::locality;
using coal::runtime;
using coal::runtime_config;
using coal::agas::locality_id;
namespace collectives = coal::collectives;

runtime_config loopback(std::uint32_t n)
{
    runtime_config cfg;
    cfg.num_localities = n;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

TEST(Collectives, BroadcastDeliversToAll)
{
    runtime rt(loopback(4));
    std::atomic<int> sum{0};
    rt.run_everywhere([&](locality& here) {
        std::optional<std::string> value;
        if (here.id() == locality_id{1})
            value = "payload";
        auto const got = collectives::broadcast<std::string>(
            rt, here, locality_id{1}, value, /*tag=*/1);
        if (got == "payload")
            ++sum;
    });
    EXPECT_EQ(sum.load(), 4);
    EXPECT_EQ(collectives::detail::pending_slots(), 0u);
    rt.stop();
}

TEST(Collectives, GatherCollectsAtRoot)
{
    runtime rt(loopback(3));
    std::vector<int> gathered;
    rt.run_everywhere([&](locality& here) {
        auto const value = static_cast<int>(here.id().value()) * 10;
        auto out =
            collectives::gather(rt, here, locality_id{0}, value, /*tag=*/2);
        if (here.id() == locality_id{0})
            gathered = std::move(out);
        else
            EXPECT_TRUE(out.empty());
    });
    EXPECT_EQ(gathered, (std::vector<int>{0, 10, 20}));
    rt.stop();
}

TEST(Collectives, ReduceFoldsAtRoot)
{
    runtime rt(loopback(4));
    long long total = -1;
    rt.run_everywhere([&](locality& here) {
        long long const value = here.id().value() + 1;    // 1..4
        auto const out = collectives::reduce(rt, here, locality_id{2}, value,
            [](long long a, long long b) { return a + b; }, /*tag=*/3);
        if (here.id() == locality_id{2})
            total = out;
    });
    EXPECT_EQ(total, 10);
    rt.stop();
}

TEST(Collectives, AllToAllPersonalizedExchange)
{
    runtime rt(loopback(4));
    std::atomic<int> correct{0};
    rt.run_everywhere([&](locality& here) {
        std::uint32_t const me = here.id().value();
        // to_send[j] encodes (me, j).
        std::vector<std::pair<std::uint32_t, std::uint32_t>> to_send;
        for (std::uint32_t j = 0; j != 4; ++j)
            to_send.emplace_back(me, j);

        auto const got =
            collectives::all_to_all(rt, here, to_send, /*tag=*/4);

        bool ok = got.size() == 4;
        for (std::uint32_t i = 0; ok && i != 4; ++i)
            ok = got[i] == std::make_pair(i, me);
        if (ok)
            ++correct;
    });
    EXPECT_EQ(correct.load(), 4);
    EXPECT_EQ(collectives::detail::pending_slots(), 0u);
    rt.stop();
}

TEST(Collectives, DistinctTagsDoNotInterfere)
{
    runtime rt(loopback(2));
    std::atomic<bool> ok{true};
    rt.run_everywhere([&](locality& here) {
        // Issue two rounds back to back with different tags; values must
        // not cross rounds.
        for (std::uint64_t round = 10; round != 14; ++round)
        {
            std::vector<std::uint64_t> to_send{
                round * 100 + here.id().value(),
                round * 100 + here.id().value()};
            auto const got =
                collectives::all_to_all(rt, here, to_send, round);
            std::uint32_t const other = here.id().value() ^ 1u;
            if (got[other] != round * 100 + other)
                ok = false;
        }
    });
    EXPECT_TRUE(ok.load());
    rt.stop();
}

TEST(Collectives, ManyRoundsStress)
{
    runtime rt(loopback(3));
    std::atomic<long long> checksum{0};
    rt.run_everywhere([&](locality& here) {
        long long local = 0;
        for (std::uint64_t round = 0; round != 50; ++round)
        {
            std::vector<long long> to_send(3,
                static_cast<long long>(here.id().value() + round));
            auto const got = collectives::all_to_all(
                rt, here, to_send, 1000 + round);
            local += std::accumulate(got.begin(), got.end(), 0ll);
        }
        checksum += local;
    });
    // Per round: Σ over receivers of Σ over senders (sender + round)
    // = 3 * (0+1+2 + 3*round).
    long long expected = 0;
    for (long long round = 0; round != 50; ++round)
        expected += 3 * (3 + 3 * round);
    EXPECT_EQ(checksum.load(), expected);
    EXPECT_EQ(collectives::detail::pending_slots(), 0u);
    rt.stop();
}

TEST(Collectives, DepositActionCoalesces)
{
    runtime rt(loopback(2));
    rt.enable_coalescing(collectives::deposit_action_name(), {16, 5000});

    rt.run_everywhere([&](locality& here) {
        for (std::uint64_t round = 0; round != 64; ++round)
        {
            std::vector<int> to_send{1, 2};
            (void) collectives::all_to_all(
                rt, here, to_send, 5000 + round);
        }
    });
    rt.quiesce();

    // 2 localities × 64 rounds × 1 remote deposit = 128 parcels; far
    // fewer wire messages.  (Retrieval back-pressure limits batch fill,
    // so only require a clear reduction.)
    auto counters = rt.get_locality(0u).coalescing().counters(
        collectives::deposit_action_name());
    ASSERT_NE(counters, nullptr);
    EXPECT_GT(counters->parcels(), 0u);
    EXPECT_LE(rt.network().stats().messages_sent, 128u);
    rt.stop();
}

TEST(Collectives, ChunkedAllToAllDeliversEveryChunk)
{
    runtime rt(loopback(3));
    std::atomic<int> correct{0};
    constexpr std::size_t chunks_per_dest = 8;

    rt.run_everywhere([&](locality& here) {
        std::uint32_t const me = here.id().value();
        std::vector<std::vector<std::uint64_t>> chunks(3);
        for (std::uint32_t j = 0; j != 3; ++j)
        {
            for (std::size_t k = 0; k != chunks_per_dest; ++k)
                chunks[j].push_back(me * 1000 + j * 100 + k);
        }

        auto const got = collectives::all_to_all_chunked(
            rt, here, chunks, /*base_tag=*/90000);

        bool ok = got.size() == 3;
        for (std::uint32_t i = 0; ok && i != 3; ++i)
        {
            ok = got[i].size() == chunks_per_dest;
            for (std::size_t k = 0; ok && k != chunks_per_dest; ++k)
                ok = got[i][k] == i * 1000 + me * 100 + k;
        }
        if (ok)
            ++correct;
    });
    EXPECT_EQ(correct.load(), 3);
    EXPECT_EQ(collectives::detail::pending_slots(), 0u);
    rt.stop();
}

TEST(Collectives, ChunkedBurstCoalescesWell)
{
    runtime rt(loopback(2));
    rt.enable_coalescing(collectives::deposit_action_name(), {16, 5000});

    rt.run_everywhere([&](locality& here) {
        std::vector<std::vector<int>> chunks(2, std::vector<int>(64, 1));
        (void) collectives::all_to_all_chunked(
            rt, here, chunks, /*base_tag=*/95000);
    });
    rt.quiesce();

    // 64 deposits per direction, bursted before any retrieval: batches
    // fill, so wire messages stay near 64/16 per direction.
    EXPECT_LE(rt.network().stats().messages_sent, 24u);
    rt.stop();
}

TEST(Collectives, LargePayloads)
{
    runtime rt(loopback(2));
    std::atomic<bool> ok{true};
    rt.run_everywhere([&](locality& here) {
        std::vector<std::vector<double>> to_send(
            2, std::vector<double>(10000, 1.0 + here.id().value()));
        auto const got = collectives::all_to_all(rt, here, to_send, 7);
        std::uint32_t const other = here.id().value() ^ 1u;
        if (got[other] != std::vector<double>(10000, 1.0 + other))
            ok = false;
    });
    EXPECT_TRUE(ok.load());
    rt.stop();
}

}    // namespace
