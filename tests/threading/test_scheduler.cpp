// Scheduler tests: task execution, stealing, background work hooks,
// instrumentation accounting and shutdown/drain semantics.

#include <coal/threading/scheduler.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/timing/busy_work.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <thread>
#include <vector>

namespace {

using coal::threading::scheduler;
using coal::threading::scheduler_config;

scheduler_config make_config(unsigned workers)
{
    scheduler_config cfg;
    cfg.num_workers = workers;
    return cfg;
}

TEST(Scheduler, ExecutesPostedTasks)
{
    scheduler sched(make_config(2));
    std::atomic<int> count{0};
    constexpr int n = 1000;
    for (int i = 0; i != n; ++i)
        sched.post([&] { ++count; });
    sched.wait_idle();
    EXPECT_EQ(count.load(), n);
}

TEST(Scheduler, PendingTasksTracksLifecycle)
{
    scheduler sched(make_config(1));
    std::latch release(1);
    std::atomic<bool> started{false};

    sched.post([&] {
        started = true;
        release.wait();
    });
    while (!started)
        std::this_thread::yield();
    EXPECT_GE(sched.pending_tasks(), 1u);
    release.count_down();
    sched.wait_idle();
    EXPECT_EQ(sched.pending_tasks(), 0u);
}

TEST(Scheduler, TasksPostedFromTasksRun)
{
    scheduler sched(make_config(1));
    std::atomic<int> depth_reached{0};

    // Chain of 50 tasks, each posting the next.
    std::function<void(int)> spawn = [&](int depth) {
        depth_reached = depth;
        if (depth < 50)
            sched.post([&, depth] { spawn(depth + 1); });
    };
    sched.post([&] { spawn(1); });
    sched.wait_idle();
    EXPECT_EQ(depth_reached.load(), 50);
}

TEST(Scheduler, WorkStealingBalancesLoad)
{
    scheduler sched(make_config(2));
    std::atomic<int> count{0};
    // Post everything from an external thread; round-robin spreads it,
    // and a worker that finishes early steals the rest.
    for (int i = 0; i != 200; ++i)
    {
        sched.post([&] {
            coal::timing::spin_for_us(100);
            ++count;
        });
    }
    sched.wait_idle();
    EXPECT_EQ(count.load(), 200);

    auto const snap = sched.snapshot();
    EXPECT_EQ(snap.tasks_executed, 200u);
}

TEST(Scheduler, OnWorkerThreadDetection)
{
    scheduler sched(make_config(1));
    EXPECT_FALSE(sched.on_worker_thread());
    EXPECT_EQ(scheduler::current(), nullptr);

    std::atomic<bool> on_worker{false};
    std::atomic<scheduler*> current{nullptr};
    sched.post([&] {
        on_worker = sched.on_worker_thread();
        current = scheduler::current();
    });
    sched.wait_idle();
    EXPECT_TRUE(on_worker.load());
    EXPECT_EQ(current.load(), &sched);
}

TEST(Scheduler, BackgroundWorkRunsWhenIdle)
{
    scheduler sched(make_config(1));
    std::atomic<int> polls{0};
    sched.register_background_work([&] {
        ++polls;
        return false;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_GT(polls.load(), 0);
}

TEST(Scheduler, BackgroundWorkRunsBetweenTasks)
{
    scheduler sched(make_config(1));
    std::atomic<int> polls{0};
    sched.register_background_work([&] {
        ++polls;
        return false;
    });
    int const before = polls.load();
    for (int i = 0; i != 100; ++i)
        sched.post([] { coal::timing::spin_for_us(10); });
    sched.wait_idle();
    // At least one poll per executed task.  wait_idle() can return after
    // the last task finished but before that task's post-execution
    // background poll ran, so give the worker a moment to catch up
    // instead of asserting an instantaneous count.
    coal::stopwatch deadline;
    while (polls.load() - before < 100 && deadline.elapsed_ms() < 2000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(polls.load() - before, 100);
}

TEST(Scheduler, BackgroundTimeIsAccountedSeparately)
{
    scheduler sched(make_config(1));
    sched.register_background_work([] {
        coal::timing::spin_for_us(200);
        return true;    // "did work": counts toward Σt_bg
    });

    for (int i = 0; i != 50; ++i)
        sched.post([] { coal::timing::spin_for_us(50); });
    sched.wait_idle();

    auto const snap = sched.snapshot();
    EXPECT_GT(snap.background_time_ns, 0);
    EXPECT_GT(snap.background_calls, 0u);
    // Task exec time must reflect the 50 µs spins.
    EXPECT_GE(snap.exec_time_ns, 50 * 50 * 1000 * 9 / 10);
    // And background >= 50 polls × 200 µs (one poll per task minimum).
    EXPECT_GE(snap.background_time_ns, 50 * 200 * 1000 * 9 / 10);
}

TEST(Scheduler, IdlePollsDoNotCountAsBackgroundWork)
{
    scheduler sched(make_config(1));
    sched.register_background_work([] {
        coal::timing::spin_for_us(100);
        return false;    // found nothing to do
    });

    for (int i = 0; i != 20; ++i)
        sched.post([] { coal::timing::spin_for_us(10); });
    sched.wait_idle();

    auto const snap = sched.snapshot();
    // Empty polls land in the idle-poll bucket, not Eq. 3's Σt_bg.
    EXPECT_EQ(snap.background_time_ns, 0);
    EXPECT_GE(snap.idle_poll_time_ns, 20 * 100 * 1000 * 9 / 10);
    EXPECT_GT(snap.background_calls, 0u);
}

TEST(Scheduler, RunPendingTaskFromExternalThread)
{
    scheduler_config cfg = make_config(1);
    scheduler sched(cfg);

    // Saturate the single worker so a task stays queued.
    std::latch hold(1);
    sched.post([&] { hold.wait(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    std::atomic<bool> ran{false};
    sched.post([&] { ran = true; });

    // The external thread helps with the queued task.
    while (!ran.load())
    {
        if (!sched.run_pending_task())
            std::this_thread::yield();
    }
    EXPECT_TRUE(ran.load());
    hold.count_down();
    sched.wait_idle();
}

TEST(Scheduler, StopDrainsQueuedTasks)
{
    std::atomic<int> count{0};
    {
        scheduler sched(make_config(2));
        for (int i = 0; i != 500; ++i)
        {
            sched.post([&] {
                coal::timing::spin_for_us(20);
                ++count;
            });
        }
        sched.stop();
    }
    EXPECT_EQ(count.load(), 500);
}

TEST(Scheduler, StopIsIdempotent)
{
    scheduler sched(make_config(1));
    sched.post([] {});
    sched.stop();
    sched.stop();
    EXPECT_TRUE(sched.stopped());
}

TEST(Scheduler, SnapshotCountsMatchEquationTwoInputs)
{
    scheduler sched(make_config(1));
    for (int i = 0; i != 100; ++i)
        sched.post([] { coal::timing::spin_for_us(30); });
    sched.wait_idle();

    auto const snap = sched.snapshot();
    EXPECT_EQ(snap.tasks_executed, 100u);
    // t_func includes t_exec plus bookkeeping: func >= exec > 0.
    EXPECT_GE(snap.func_time_ns, snap.exec_time_ns);
    EXPECT_GT(snap.exec_time_ns, 0);
    // Eq. 2: average overhead is non-negative and finite.
    EXPECT_GE(snap.average_task_overhead_ns(), 0.0);
    EXPECT_LT(snap.average_task_overhead_ns(), 1e7);
}

TEST(Scheduler, SnapshotSinceComputesDeltas)
{
    scheduler sched(make_config(1));
    for (int i = 0; i != 10; ++i)
        sched.post([] {});
    sched.wait_idle();
    auto const first = sched.snapshot();

    for (int i = 0; i != 5; ++i)
        sched.post([] {});
    sched.wait_idle();
    auto const delta = sched.snapshot().since(first);
    EXPECT_EQ(delta.tasks_executed, 5u);
}

TEST(Scheduler, PostNExecutesAllAndCountsOneBulkPost)
{
    scheduler sched(make_config(4));
    std::atomic<int> count{0};

    std::vector<coal::threading::task_type> tasks;
    for (int i = 0; i != 100; ++i)
        tasks.emplace_back([&count] { ++count; });
    sched.post_n(std::move(tasks));
    sched.wait_idle();

    EXPECT_EQ(count.load(), 100);
    auto const snap = sched.snapshot();
    EXPECT_EQ(snap.bulk_posts, 1u);
    EXPECT_EQ(snap.bulk_posted_tasks, 100u);
    EXPECT_EQ(snap.tasks_executed, 100u);
}

TEST(Scheduler, PostNFromWorkerKeepsFifoOrder)
{
    // On one worker the local deque is FIFO, so tasks posted from inside
    // a task — singly or in bulk — run in submission order.
    scheduler sched(make_config(1));
    std::vector<int> order;
    std::latch done(1);

    sched.post([&] {
        sched.post([&order] { order.push_back(1); });
        std::vector<coal::threading::task_type> bulk;
        bulk.emplace_back([&order] { order.push_back(2); });
        bulk.emplace_back([&order] { order.push_back(3); });
        sched.post_n(std::move(bulk));
        sched.post([&order, &done] {
            order.push_back(4);
            done.count_down();
        });
    });
    done.wait();
    sched.wait_idle();

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Scheduler, PostNEmptyBatchIsNoOp)
{
    scheduler sched(make_config(2));
    sched.post_n({});
    sched.wait_idle();

    auto const snap = sched.snapshot();
    EXPECT_EQ(snap.bulk_posts, 0u);
    EXPECT_EQ(snap.bulk_posted_tasks, 0u);
    EXPECT_EQ(sched.pending_tasks(), 0u);
}

TEST(Scheduler, PostNBatchesAreStealable)
{
    // A worker-local bulk post lands entirely on that worker's deque; the
    // sleeper at the front pins it, so the other worker must steal to
    // make progress on the rest.
    scheduler sched(make_config(2));
    std::atomic<int> count{0};
    std::latch done(1);

    sched.post([&] {
        std::vector<coal::threading::task_type> bulk;
        bulk.emplace_back(
            [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
        for (int i = 0; i != 50; ++i)
            bulk.emplace_back([&count] { ++count; });
        bulk.emplace_back([&done] { done.count_down(); });
        sched.post_n(std::move(bulk));
    });
    done.wait();
    sched.wait_idle();

    EXPECT_EQ(count.load(), 50);
    EXPECT_GE(sched.snapshot().tasks_stolen, 1u);
}

}    // namespace
