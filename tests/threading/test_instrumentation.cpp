// Instrumentation arithmetic: the snapshot type implements the paper's
// equations, so the identities are pinned down here with synthetic
// numbers (no timing dependence).

#include <coal/threading/instrumentation.hpp>

#include <gtest/gtest.h>

namespace {

using coal::threading::instrumentation;
using coal::threading::scheduler_snapshot;

scheduler_snapshot make_snapshot(std::uint64_t tasks, std::int64_t func_ns,
    std::int64_t exec_ns, std::int64_t bg_ns)
{
    scheduler_snapshot s;
    s.tasks_executed = tasks;
    s.func_time_ns = func_ns;
    s.exec_time_ns = exec_ns;
    s.background_time_ns = bg_ns;
    return s;
}

TEST(Snapshot, EquationOneTaskDuration)
{
    auto const s = make_snapshot(10, 5000, 4000, 100);
    EXPECT_EQ(s.task_duration_ns(), 5000);
}

TEST(Snapshot, EquationTwoAverageOverhead)
{
    // (Σt_func − Σt_exec) / n_t = (5000 − 4000) / 10 = 100.
    auto const s = make_snapshot(10, 5000, 4000, 0);
    EXPECT_DOUBLE_EQ(s.average_task_overhead_ns(), 100.0);
}

TEST(Snapshot, EquationTwoZeroTasks)
{
    auto const s = make_snapshot(0, 0, 0, 0);
    EXPECT_DOUBLE_EQ(s.average_task_overhead_ns(), 0.0);
}

TEST(Snapshot, EquationThreeBackgroundDuration)
{
    auto const s = make_snapshot(1, 10, 10, 777);
    EXPECT_EQ(s.background_duration_ns(), 777);
}

TEST(Snapshot, EquationFourNetworkOverhead)
{
    // bg / (func + bg) = 2000 / (6000 + 2000) = 0.25.
    auto const s = make_snapshot(5, 6000, 5000, 2000);
    EXPECT_DOUBLE_EQ(s.network_overhead(), 0.25);
}

TEST(Snapshot, EquationFourBounds)
{
    EXPECT_DOUBLE_EQ(make_snapshot(0, 0, 0, 0).network_overhead(), 0.0);
    // All background, no tasks: ratio approaches 1 but stays defined.
    EXPECT_DOUBLE_EQ(make_snapshot(0, 0, 0, 500).network_overhead(), 1.0);
}

TEST(Snapshot, NetworkOverheadMonotoneInBackgroundTime)
{
    double last = -1.0;
    for (std::int64_t bg : {0, 100, 1000, 10000, 100000})
    {
        double const v = make_snapshot(1, 5000, 4000, bg).network_overhead();
        EXPECT_GT(v, last);
        last = v;
    }
}

TEST(Snapshot, SinceSubtractsFieldwise)
{
    auto const a = make_snapshot(10, 1000, 800, 50);
    auto const b = make_snapshot(25, 3000, 2400, 250);
    auto const d = b.since(a);
    EXPECT_EQ(d.tasks_executed, 15u);
    EXPECT_EQ(d.func_time_ns, 2000);
    EXPECT_EQ(d.exec_time_ns, 1600);
    EXPECT_EQ(d.background_time_ns, 200);
}

TEST(Instrumentation, AggregatesAcrossWorkers)
{
    instrumentation instr(3);
    instr.worker(0).tasks_executed.store(5);
    instr.worker(1).tasks_executed.store(7);
    instr.worker(2).tasks_executed.store(1);
    instr.worker(0).func_time_ns.store(100);
    instr.worker(1).func_time_ns.store(200);
    instr.worker(2).background_time_ns.store(40);

    auto const s = instr.snapshot();
    EXPECT_EQ(s.tasks_executed, 13u);
    EXPECT_EQ(s.func_time_ns, 300);
    EXPECT_EQ(s.background_time_ns, 40);
}

TEST(Instrumentation, ExternalBackgroundTimeJoinsEquationThree)
{
    instrumentation instr(1);
    instr.worker(0).background_time_ns.store(100);
    instr.add_external_background_ns(900);
    EXPECT_EQ(instr.snapshot().background_duration_ns(), 1000);
}

}    // namespace
