// Future/promise (LCO) semantics, including the property the runtime
// depends on: waiting inside a task keeps the scheduler making progress
// (help-while-wait) instead of deadlocking a single-worker locality.

#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using coal::threading::future;
using coal::threading::make_ready_future;
using coal::threading::promise;
using coal::threading::scheduler;
using coal::threading::scheduler_config;
using coal::threading::wait_all;
using coal::threading::when_all;

TEST(Future, DefaultConstructedIsInvalid)
{
    future<int> f;
    EXPECT_FALSE(f.valid());
}

TEST(Future, SetThenGet)
{
    promise<int> p;
    auto f = p.get_future();
    EXPECT_TRUE(f.valid());
    EXPECT_FALSE(f.is_ready());
    p.set_value(42);
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 42);
    EXPECT_FALSE(f.valid());    // consumed
}

TEST(Future, VoidSpecialization)
{
    promise<void> p;
    auto f = p.get_future();
    p.set_value();
    EXPECT_TRUE(f.is_ready());
    f.get();
}

TEST(Future, MoveOnlyValue)
{
    promise<std::unique_ptr<int>> p;
    auto f = p.get_future();
    p.set_value(std::make_unique<int>(9));
    auto v = f.get();
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 9);
}

TEST(Future, ExceptionPropagates)
{
    promise<int> p;
    auto f = p.get_future();
    p.set_exception(
        std::make_exception_ptr(std::runtime_error("remote boom")));
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, BlockingWaitFromExternalThread)
{
    promise<int> p;
    auto f = p.get_future();
    std::thread setter([&p] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        p.set_value(5);
    });
    EXPECT_EQ(f.get(), 5);
    setter.join();
}

TEST(Future, WaitForTimesOut)
{
    promise<int> p;
    auto f = p.get_future();
    EXPECT_FALSE(f.wait_for_us(20000));
    p.set_value(1);
    EXPECT_TRUE(f.wait_for_us(20000));
}

TEST(Future, MakeReadyFuture)
{
    auto f = make_ready_future(std::string("done"));
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), "done");

    auto v = coal::threading::make_ready_future();
    EXPECT_TRUE(v.is_ready());
}

TEST(Future, ThenRunsAfterValue)
{
    promise<int> p;
    auto f = p.get_future();
    auto g = f.then([](future<int>&& done) { return done.get() * 2; });
    EXPECT_FALSE(f.valid());    // then() consumes
    EXPECT_FALSE(g.is_ready());
    p.set_value(21);
    EXPECT_EQ(g.get(), 42);
}

TEST(Future, ThenOnReadyFutureRunsImmediately)
{
    auto f = make_ready_future(10);
    auto g = f.then([](future<int>&& done) { return done.get() + 1; });
    EXPECT_TRUE(g.is_ready());
    EXPECT_EQ(g.get(), 11);
}

TEST(Future, ThenPropagatesException)
{
    promise<int> p;
    auto f = p.get_future();
    auto g = f.then([](future<int>&& done) { return done.get(); });
    p.set_exception(std::make_exception_ptr(std::logic_error("x")));
    EXPECT_THROW(g.get(), std::logic_error);
}

TEST(Future, ThenChain)
{
    promise<int> p;
    auto f = p.get_future()
                 .then([](future<int>&& a) { return a.get() + 1; })
                 .then([](future<int>&& b) { return b.get() * 3; });
    p.set_value(1);
    EXPECT_EQ(f.get(), 6);
}

TEST(Future, WaitAllWaitsForEvery)
{
    std::vector<promise<int>> promises(10);
    std::vector<future<int>> futures;
    for (auto& p : promises)
        futures.push_back(p.get_future());

    std::thread setter([&promises] {
        for (auto& p : promises)
        {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            p.set_value(1);
        }
    });
    wait_all(futures);
    for (auto& f : futures)
        EXPECT_TRUE(f.is_ready());
    setter.join();
}

TEST(Future, WhenAllBecomesReadyOnLast)
{
    std::vector<promise<int>> promises(3);
    std::vector<future<int>> futures;
    for (auto& p : promises)
        futures.push_back(p.get_future());

    auto all = when_all(futures);
    EXPECT_FALSE(all.is_ready());
    promises[1].set_value(1);
    promises[0].set_value(2);
    EXPECT_FALSE(all.is_ready());
    promises[2].set_value(3);
    EXPECT_TRUE(all.is_ready());
    all.get();
}

TEST(Future, WhenAllOnEmptyIsReady)
{
    std::vector<future<int>> futures;
    auto all = when_all(futures);
    EXPECT_TRUE(all.is_ready());
}

// The deadlock-avoidance property: a task on a 1-worker scheduler waits
// on a future whose fulfilment requires ANOTHER task on the same
// scheduler to run.  Blocking the OS thread would deadlock; the
// help-while-wait loop must execute the other task instead.
TEST(Future, HelpWhileWaitAvoidsSingleWorkerDeadlock)
{
    scheduler_config cfg;
    cfg.num_workers = 1;
    scheduler sched(cfg);

    promise<int> p;
    std::atomic<bool> done{false};

    sched.post([&] {
        auto f = p.get_future();
        // The fulfilling task is queued behind us on the same worker.
        sched.post([&p] { p.set_value(77); });
        EXPECT_EQ(f.get(), 77);
        done = true;
    });

    sched.wait_idle();
    EXPECT_TRUE(done.load());
}

TEST(Future, HelpWhileWaitHandlesDeepDependencyChain)
{
    scheduler_config cfg;
    cfg.num_workers = 1;
    scheduler sched(cfg);

    std::atomic<int> result{0};
    sched.post([&] {
        // Each level waits on a future fulfilled by a deeper task.
        std::function<int(int)> level = [&](int depth) -> int {
            if (depth == 0)
                return 1;
            promise<int> p;
            auto f = p.get_future();
            sched.post([&level, depth, pr = std::move(p)]() mutable {
                pr.set_value(level(depth - 1) + 1);
            });
            return f.get();
        };
        result = level(20);
    });
    sched.wait_idle();
    EXPECT_EQ(result.load(), 21);
}

TEST(Future, ManyContinuationsOnOnePromiseAllFire)
{
    // Fan-out: a chain of then() calls, each link derived from the
    // previous, all become ready after one set_value.
    promise<int> p;
    auto f = p.get_future();
    std::atomic<int> fired{0};
    future<int> tail = std::move(f);
    for (int i = 0; i != 8; ++i)
    {
        tail = tail.then([&fired](future<int>&& prev) {
            ++fired;
            return prev.get();
        });
    }
    p.set_value(3);
    EXPECT_EQ(tail.get(), 3);
    EXPECT_EQ(fired.load(), 8);
}

}    // namespace
