#include <coal/agas/gid.hpp>

#include <coal/serialization/archive.hpp>

#include <gtest/gtest.h>

#include <unordered_set>

namespace {

using coal::agas::gid;
using coal::agas::locality_id;

TEST(LocalityId, DefaultIsInvalid)
{
    locality_id id;
    EXPECT_FALSE(id.valid());
    EXPECT_EQ(id, locality_id::invalid());
}

TEST(LocalityId, RootIsZero)
{
    EXPECT_EQ(locality_id::root().value(), 0u);
    EXPECT_TRUE(locality_id::root().valid());
}

TEST(LocalityId, Ordering)
{
    EXPECT_LT(locality_id{1}, locality_id{2});
    EXPECT_EQ(locality_id{3}, locality_id{3});
}

TEST(LocalityId, SerializeRoundTrip)
{
    locality_id const id{42};
    auto const copy =
        coal::serialization::from_bytes<locality_id>(
            coal::serialization::to_bytes(id));
    EXPECT_EQ(copy, id);
}

TEST(Gid, DefaultIsInvalid)
{
    gid g;
    EXPECT_FALSE(g.valid());
    EXPECT_EQ(g.raw(), 0u);
}

TEST(Gid, FieldPacking)
{
    gid const g(locality_id{5}, 12345);
    EXPECT_EQ(g.origin().value(), 5u);
    EXPECT_EQ(g.sequence(), 12345u);
    EXPECT_TRUE(g.valid());
}

TEST(Gid, MaxSequencePreserved)
{
    std::uint64_t const max_seq = gid::sequence_mask;
    gid const g(locality_id{65535}, max_seq);
    EXPECT_EQ(g.origin().value(), 65535u);
    EXPECT_EQ(g.sequence(), max_seq);
}

TEST(Gid, SequenceTruncatesToMask)
{
    gid const g(locality_id{0}, gid::sequence_mask + 5);
    EXPECT_EQ(g.sequence(), 4u);    // wrapped into the 48-bit field
}

TEST(Gid, DistinctInputsGiveDistinctGids)
{
    std::unordered_set<gid> seen;
    for (std::uint32_t loc = 0; loc != 8; ++loc)
        for (std::uint64_t seq = 1; seq != 100; ++seq)
            EXPECT_TRUE(seen.insert(gid(locality_id{loc}, seq)).second);
}

TEST(Gid, SerializeRoundTrip)
{
    gid const g(locality_id{3}, 999);
    auto const copy = coal::serialization::from_bytes<gid>(
        coal::serialization::to_bytes(g));
    EXPECT_EQ(copy, g);
}

}    // namespace
