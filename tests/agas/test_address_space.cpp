// AGAS service: locality enumeration, gid allocation/resolution,
// migration, symbolic names and typed component binding.

#include <coal/agas/address_space.hpp>

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace {

using coal::agas::address_space;
using coal::agas::gid;
using coal::agas::locality_id;

TEST(AddressSpace, LocalityEnumeration)
{
    address_space agas(4);
    EXPECT_EQ(agas.num_localities(), 4u);
    EXPECT_EQ(agas.all_localities().size(), 4u);

    auto const remotes = agas.remote_localities(locality_id{1});
    ASSERT_EQ(remotes.size(), 3u);
    for (auto r : remotes)
        EXPECT_NE(r, locality_id{1});
}

TEST(AddressSpace, ValidityChecks)
{
    address_space agas(2);
    EXPECT_TRUE(agas.is_valid(locality_id{0}));
    EXPECT_TRUE(agas.is_valid(locality_id{1}));
    EXPECT_FALSE(agas.is_valid(locality_id{2}));
    EXPECT_FALSE(agas.is_valid(locality_id::invalid()));
}

TEST(AddressSpace, AllocateGivesUniqueValidGids)
{
    address_space agas(2);
    std::unordered_set<gid> seen;
    for (int i = 0; i != 1000; ++i)
    {
        gid const g = agas.allocate(locality_id{i % 2 == 0 ? 0u : 1u});
        EXPECT_TRUE(g.valid());
        EXPECT_TRUE(seen.insert(g).second);
    }
}

TEST(AddressSpace, ResolveUnmigratedUsesOriginBits)
{
    address_space agas(3);
    gid const g = agas.allocate(locality_id{2});
    EXPECT_EQ(agas.resolve(g), locality_id{2});
}

TEST(AddressSpace, ResolveInvalidGid)
{
    address_space agas(2);
    EXPECT_FALSE(agas.resolve(gid{}).has_value());
    // A gid whose origin locality does not exist here.
    EXPECT_FALSE(agas.resolve(gid(locality_id{9}, 1)).has_value());
}

TEST(AddressSpace, MigrationRehomesGid)
{
    address_space agas(3);
    gid const g = agas.allocate(locality_id{0});

    EXPECT_TRUE(agas.migrate(g, locality_id{2}));
    EXPECT_EQ(agas.resolve(g), locality_id{2});

    // Migrating home again removes the override.
    EXPECT_TRUE(agas.migrate(g, locality_id{0}));
    EXPECT_EQ(agas.resolve(g), locality_id{0});
}

TEST(AddressSpace, MigrationRejectsBadArgs)
{
    address_space agas(2);
    gid const g = agas.allocate(locality_id{0});
    EXPECT_FALSE(agas.migrate(g, locality_id{7}));
    EXPECT_FALSE(agas.migrate(gid{}, locality_id{1}));
}

TEST(AddressSpace, SymbolicNames)
{
    address_space agas(2);
    gid const g = agas.allocate(locality_id{1});

    EXPECT_TRUE(agas.register_name("objects/main", g));
    EXPECT_EQ(agas.resolve_name("objects/main"), g);
    EXPECT_FALSE(agas.resolve_name("objects/other").has_value());

    // Names are unique.
    gid const h = agas.allocate(locality_id{0});
    EXPECT_FALSE(agas.register_name("objects/main", h));

    EXPECT_TRUE(agas.unregister_name("objects/main"));
    EXPECT_FALSE(agas.unregister_name("objects/main"));
    EXPECT_FALSE(agas.resolve_name("objects/main").has_value());
}

TEST(AddressSpace, NameRejectsEmptyOrInvalid)
{
    address_space agas(1);
    EXPECT_FALSE(agas.register_name("", agas.allocate(locality_id{0})));
    EXPECT_FALSE(agas.register_name("x", gid{}));
}

TEST(AddressSpace, ComponentBindFindUnbind)
{
    address_space agas(2);
    auto obj = std::make_shared<std::string>("component state");
    gid const g = agas.bind(locality_id{0}, obj);

    auto found = agas.find<std::string>(g);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, "component state");
    EXPECT_EQ(agas.component_count(), 1u);

    // Type mismatch yields nullptr, not a bad cast.
    EXPECT_EQ(agas.find<int>(g), nullptr);

    EXPECT_TRUE(agas.unbind(g));
    EXPECT_EQ(agas.find<std::string>(g), nullptr);
    EXPECT_FALSE(agas.unbind(g));
    EXPECT_EQ(agas.component_count(), 0u);
}

TEST(AddressSpace, ConcurrentAllocationIsRaceFree)
{
    address_space agas(2);
    constexpr int threads = 4;
    constexpr int per_thread = 5000;
    std::vector<std::vector<gid>> results(threads);

    std::vector<std::thread> workers;
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&agas, &results, t] {
            results[static_cast<std::size_t>(t)].reserve(per_thread);
            for (int i = 0; i != per_thread; ++i)
                results[static_cast<std::size_t>(t)].push_back(
                    agas.allocate(locality_id{static_cast<std::uint32_t>(
                        t % 2)}));
        });
    }
    for (auto& w : workers)
        w.join();

    std::unordered_set<gid> all;
    for (auto const& batch : results)
        for (auto g : batch)
            EXPECT_TRUE(all.insert(g).second);
    EXPECT_EQ(all.size(),
        static_cast<std::size_t>(threads) * per_thread);
}

}    // namespace
