// Multi-process smoke test: N real OS processes form one runtime over
// localhost TCP.
//
// The parent (the gtest process) pre-binds every rank's listening socket
// — asking the kernel for ephemeral ports makes the endpoint table
// collision-free by construction — then forks one child per rank.  Each
// child inherits its own listener fd (COAL_LISTEN_FD), the full endpoint
// table (COAL_ENDPOINTS) and its rank (COAL_SMOKE_RANK), re-execs this
// same binary, and boots a runtime hosting exactly one locality.  The
// HELLO handshake carries the action-registry digest, so four copies of
// this binary verify they agree on every action id before any parcel
// flows.
//
// The workload is a small all-to-all with per-value checksums.  Variants
// add seeded fault injection (faulty_transport composed over the real
// wire) and one forced TCP connection drop mid-stream, which reconnect
// must heal with delivery staying exactly-once and WITHOUT an
// incarnation epoch bump (a lost socket is a link event, not a peer
// death).
//
// Child output goes to smoke-logs/rank-N.log next to the test's working
// directory; CI uploads these on failure.

#include <coal/runtime/runtime.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/parcel/action.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

std::atomic<long long> g_smoke_sum{0};
std::atomic<long long> g_smoke_count{0};

void smoke_deposit(int value)
{
    g_smoke_sum += value;
    ++g_smoke_count;
}

}    // namespace

COAL_PLAIN_ACTION(smoke_deposit, smoke_deposit_action);

namespace {

constexpr std::uint32_t num_ranks = 4;
constexpr int per_link = 300;

std::vector<std::string> split_endpoints(char const* csv)
{
    std::vector<std::string> out;
    std::string cur;
    for (char const* p = csv; *p != '\0'; ++p)
    {
        if (*p == ',')
        {
            out.push_back(cur);
            cur.clear();
        }
        else
        {
            cur += *p;
        }
    }
    out.push_back(cur);
    return out;
}

// ---------------------------------------------------------------------
// child
// ---------------------------------------------------------------------

int run_child(std::uint32_t rank)
{
    char const* endpoints_csv = std::getenv("COAL_ENDPOINTS");
    char const* listen_fd = std::getenv("COAL_LISTEN_FD");
    if (endpoints_csv == nullptr || listen_fd == nullptr)
    {
        std::fprintf(stderr, "smoke child: missing bootstrap env\n");
        return 2;
    }
    double const drop_probability = [] {
        char const* d = std::getenv("COAL_SMOKE_DROP");
        return d != nullptr ? std::atof(d) : 0.0;
    }();
    bool const cut_connection = std::getenv("COAL_SMOKE_CUT") != nullptr;

    coal::runtime_config cfg;
    cfg.num_localities = num_ranks;
    cfg.workers_per_locality = 2;
    cfg.apply_coalescing_defaults = false;
    cfg.transport = "tcp";
    cfg.socket.endpoints = split_endpoints(endpoints_csv);
    cfg.socket.inherited_listen_fd = std::atoi(listen_fd);
    cfg.first_local_rank = rank;
    cfg.num_local_ranks = 1;
    cfg.reliability.enabled = true;
    cfg.reliability.min_rto_us = 20000;
    if (drop_probability > 0.0)
    {
        cfg.faults.seed = 0x5110ce00 + rank;    // per-process fault stream
        cfg.faults.drop_probability = drop_probability;
    }

    coal::runtime rt(cfg);
    std::uint32_t const epoch_before =
        rt.get_locality(rank).parcels().epoch();

    rt.run_everywhere([&](coal::locality& here) {
        for (int i = 0; i != per_link; ++i)
        {
            for (auto const dest : here.find_remote_localities())
                here.apply<smoke_deposit_action>(dest, i);
            // Mid-stream, rank 0 cuts its connection toward rank 1: the
            // frames racing the cut are retransmitted over the healed
            // connection.
            if (cut_connection && rank == 0 && i == per_link / 2)
                rt.wire()->debug_drop_connection(1);
        }
    });

    // App-level completion: every rank waits for its own expected
    // arrivals (retransmissions keep flowing underneath).
    long long const expect_count =
        static_cast<long long>(num_ranks - 1) * per_link;
    long long const expect_sum = static_cast<long long>(num_ranks - 1) *
        per_link * (per_link - 1) / 2;

    coal::stopwatch sw;
    while (g_smoke_count.load() != expect_count && sw.elapsed_ms() < 60000)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));

    bool ok = true;
    if (g_smoke_count.load() != expect_count ||
        g_smoke_sum.load() != expect_sum)
    {
        std::fprintf(stderr,
            "smoke rank %u: delivery mismatch count=%lld/%lld sum=%lld/%lld\n",
            rank, g_smoke_count.load(), expect_count, g_smoke_sum.load(),
            expect_sum);
        ok = false;
    }

    // Everyone has its data: barrier, then drain the reliability state
    // (acks) while all processes are still alive, then part ways.
    rt.barrier();
    rt.quiesce();

    auto const w = rt.wire()->wire_stats();
    if (cut_connection && rank == 0 && w.reconnects == 0)
    {
        std::fprintf(stderr, "smoke rank 0: expected a reconnect\n");
        ok = false;
    }
    std::uint32_t const epoch_after =
        rt.get_locality(rank).parcels().epoch();
    if (epoch_after != epoch_before)
    {
        std::fprintf(stderr, "smoke rank %u: epoch bumped %u -> %u\n", rank,
            epoch_before, epoch_after);
        ok = false;
    }

    std::printf("SMOKE rank=%u ok=%d count=%lld sum=%lld frames_sent=%llu "
                "frames_received=%llu reconnects=%llu crc_drops=%llu\n",
        rank, ok ? 1 : 0, g_smoke_count.load(), g_smoke_sum.load(),
        static_cast<unsigned long long>(w.frames_sent),
        static_cast<unsigned long long>(w.frames_received),
        static_cast<unsigned long long>(w.reconnects),
        static_cast<unsigned long long>(w.crc_drops));
    std::fflush(stdout);

    rt.barrier();
    rt.stop();
    return ok ? 0 : 1;
}

// ---------------------------------------------------------------------
// parent
// ---------------------------------------------------------------------

struct bound_listener
{
    int fd = -1;
    std::uint16_t port = 0;
};

bound_listener bind_ephemeral()
{
    bound_listener out;
    out.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (out.fd < 0)
        return out;
    int one = 1;
    ::setsockopt(out.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    ::sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;
    if (::bind(out.fd, reinterpret_cast<::sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(out.fd, 64) != 0)
    {
        ::close(out.fd);
        out.fd = -1;
        return out;
    }
    ::socklen_t len = sizeof sa;
    ::getsockname(out.fd, reinterpret_cast<::sockaddr*>(&sa), &len);
    out.port = ntohs(sa.sin_port);
    return out;
}

/// Fork + exec this binary once per rank; returns child pids.
void run_fixture(bool with_drops, bool with_cut)
{
    std::vector<bound_listener> listeners;
    std::string endpoints;
    for (std::uint32_t r = 0; r != num_ranks; ++r)
    {
        auto l = bind_ephemeral();
        ASSERT_GE(l.fd, 0) << "parent could not pre-bind rank " << r;
        if (r != 0)
            endpoints += ',';
        endpoints += "127.0.0.1:" + std::to_string(l.port);
        listeners.push_back(l);
    }

    ::mkdir("smoke-logs", 0755);

    char exe[4096];
    ssize_t const n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    ASSERT_GT(n, 0);
    exe[n] = '\0';

    std::vector<pid_t> pids;
    for (std::uint32_t r = 0; r != num_ranks; ++r)
    {
        pid_t const pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0)
        {
            // Child: keep only our own listener, route output to the
            // per-rank log, publish the bootstrap env, re-exec.
            for (std::uint32_t o = 0; o != num_ranks; ++o)
                if (o != r)
                    ::close(listeners[o].fd);
            std::string const log =
                "smoke-logs/rank-" + std::to_string(r) + ".log";
            int const logfd =
                ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
            if (logfd >= 0)
            {
                ::dup2(logfd, STDOUT_FILENO);
                ::dup2(logfd, STDERR_FILENO);
                ::close(logfd);
            }
            ::setenv("COAL_SMOKE_RANK", std::to_string(r).c_str(), 1);
            ::setenv("COAL_ENDPOINTS", endpoints.c_str(), 1);
            ::setenv("COAL_LISTEN_FD",
                std::to_string(listeners[r].fd).c_str(), 1);
            if (with_drops)
                ::setenv("COAL_SMOKE_DROP", "0.02", 1);
            if (with_cut)
                ::setenv("COAL_SMOKE_CUT", "1", 1);
            // The fixture must not recurse into transport overrides.
            ::unsetenv("COAL_TRANSPORT");
            char* const argv[] = {exe, nullptr};
            ::execv(exe, argv);
            std::_Exit(127);
        }
        pids.push_back(pid);
    }
    for (auto const& l : listeners)
        ::close(l.fd);

    // Reap with a deadline; on timeout, kill what is left and fail.
    coal::stopwatch sw;
    std::vector<int> status(num_ranks, -1);
    std::size_t reaped = 0;
    while (reaped != pids.size() && sw.elapsed_ms() < 120000)
    {
        bool progressed = false;
        for (std::uint32_t r = 0; r != num_ranks; ++r)
        {
            if (status[r] != -1 || pids[r] == 0)
                continue;
            int st = 0;
            pid_t const got = ::waitpid(pids[r], &st, WNOHANG);
            if (got == pids[r])
            {
                status[r] = st;
                ++reaped;
                progressed = true;
            }
        }
        if (!progressed)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    for (std::uint32_t r = 0; r != num_ranks; ++r)
    {
        if (status[r] == -1)
        {
            ::kill(pids[r], SIGKILL);
            ::waitpid(pids[r], nullptr, 0);
            ADD_FAILURE() << "rank " << r << " timed out (killed)";
            continue;
        }
        EXPECT_TRUE(WIFEXITED(status[r]) && WEXITSTATUS(status[r]) == 0)
            << "rank " << r << " exited with status " << status[r]
            << " (see smoke-logs/rank-" << r << ".log)";
    }
}

TEST(MultiprocessSmoke, FourRanksCleanAllToAll)
{
    run_fixture(/*with_drops=*/false, /*with_cut=*/false);
}

TEST(MultiprocessSmoke, FourRanksWithDropsAndForcedConnectionCut)
{
    // faulty_transport composed over real TCP in every process, plus one
    // forced connection drop: delivery must stay exactly-once, healed by
    // retransmit + reconnect, with no epoch bump anywhere.
    run_fixture(/*with_drops=*/true, /*with_cut=*/true);
}

}    // namespace

int main(int argc, char** argv)
{
    if (char const* rank = std::getenv("COAL_SMOKE_RANK"))
        return run_child(static_cast<std::uint32_t>(std::atoi(rank)));
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
