// Counter adapter types (scalar function counters, array counters).

#include <coal/perf/counter.hpp>

#include <gtest/gtest.h>

namespace {

using coal::perf::array_function_counter;
using coal::perf::function_counter;

TEST(FunctionCounter, ReadsThroughCallable)
{
    double value = 1.5;
    function_counter c([&] { return value; });
    EXPECT_DOUBLE_EQ(c.value(false).value, 1.5);
    value = 2.5;
    EXPECT_DOUBLE_EQ(c.value(false).value, 2.5);
    EXPECT_TRUE(c.value(false).valid);
    EXPECT_FALSE(c.value(false).is_array());
}

TEST(FunctionCounter, ResetOnReadInvokesResetFn)
{
    double value = 10.0;
    int resets = 0;
    function_counter c([&] { return value; }, [&] { ++resets; });
    EXPECT_DOUBLE_EQ(c.value(true).value, 10.0);
    EXPECT_EQ(resets, 1);
    c.reset();
    EXPECT_EQ(resets, 2);
}

TEST(FunctionCounter, ResetWithoutFnIsNoop)
{
    function_counter c([] { return 1.0; });
    c.reset();    // must not crash
    EXPECT_DOUBLE_EQ(c.value(true).value, 1.0);
}

TEST(ArrayCounter, ReturnsValuesVector)
{
    array_function_counter c(
        [] { return std::vector<std::int64_t>{1, 2, 3}; });
    auto const v = c.value(false);
    EXPECT_TRUE(v.valid);
    ASSERT_TRUE(v.is_array());
    EXPECT_EQ(v.values, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(ArrayCounter, ResetOnRead)
{
    std::vector<std::int64_t> data{5};
    array_function_counter c([&] { return data; }, [&] { data = {0}; });
    EXPECT_EQ(c.value(true).values, (std::vector<std::int64_t>{5}));
    EXPECT_EQ(c.value(false).values, (std::vector<std::int64_t>{0}));
}

}    // namespace
