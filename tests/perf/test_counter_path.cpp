// The HPX-style counter-name grammar: /object{instance}/name@parameters.

#include <coal/perf/counter_path.hpp>

#include <gtest/gtest.h>

namespace {

using coal::perf::counter_path;

TEST(CounterPath, MinimalForm)
{
    auto p = counter_path::parse("/threads/count");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->object, "threads");
    EXPECT_EQ(p->instance, "");
    EXPECT_EQ(p->name, "count");
    EXPECT_EQ(p->parameters, "");
}

TEST(CounterPath, NameWithSlashes)
{
    auto p = counter_path::parse("/coalescing/count/average-parcels-per-message");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->object, "coalescing");
    EXPECT_EQ(p->name, "count/average-parcels-per-message");
}

TEST(CounterPath, FullForm)
{
    auto p = counter_path::parse(
        "/coalescing{locality#0/total}/count/parcels@my_action");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->object, "coalescing");
    EXPECT_EQ(p->instance, "locality#0/total");
    EXPECT_EQ(p->name, "count/parcels");
    EXPECT_EQ(p->parameters, "my_action");
}

TEST(CounterPath, TypePathStripsInstanceAndParams)
{
    auto p = counter_path::parse("/threads{locality#2}/background-work@x");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->type_path(), "/threads/background-work");
}

TEST(CounterPath, StrRoundTrips)
{
    for (auto const* name : {
             "/threads/count/cumulative",
             "/coalescing{locality#1}/count/messages@actn",
             "/data{locality#0/total}/count/sent",
             "/timers/time/average-lateness",
         })
    {
        auto p = counter_path::parse(name);
        ASSERT_TRUE(p.has_value()) << name;
        EXPECT_EQ(p->str(), name);
        // Parse(str()) is idempotent.
        auto q = counter_path::parse(p->str());
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(*p, *q);
    }
}

TEST(CounterPath, LocalityExtraction)
{
    EXPECT_EQ(counter_path::parse("/a{locality#3}/b")->locality(), 3u);
    EXPECT_EQ(counter_path::parse("/a{locality#12/total}/b")->locality(), 12u);
    EXPECT_FALSE(counter_path::parse("/a{total}/b")->locality().has_value());
    EXPECT_FALSE(counter_path::parse("/a/b")->locality().has_value());
    EXPECT_FALSE(
        counter_path::parse("/a{locality#}/b")->locality().has_value());
}

TEST(CounterPath, MalformedInputsRejected)
{
    EXPECT_FALSE(counter_path::parse("").has_value());
    EXPECT_FALSE(counter_path::parse("threads/count").has_value());
    EXPECT_FALSE(counter_path::parse("/").has_value());
    EXPECT_FALSE(counter_path::parse("//name").has_value());
    EXPECT_FALSE(counter_path::parse("/obj{unclosed/name").has_value());
    EXPECT_FALSE(counter_path::parse("/obj{x}name").has_value());
    EXPECT_FALSE(counter_path::parse("/obj").has_value());
}

TEST(CounterPath, ParametersMayContainSpecialChars)
{
    auto p = counter_path::parse("/coalescing/time/histogram@actn,0,1000,20");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->parameters, "actn,0,1000,20");
}

}    // namespace
