// Counter registry: type registration, lazy instantiation + caching,
// discovery, reset_all, and failure modes.

#include <coal/perf/registry.hpp>

#include <gtest/gtest.h>

#include <memory>

namespace {

using coal::perf::counter_path;
using coal::perf::counter_ptr;
using coal::perf::counter_registry;
using coal::perf::delta_sampler;
using coal::perf::function_counter;

TEST(Registry, RegisterAndQuery)
{
    counter_registry reg;
    double value = 3.0;
    reg.register_counter_type("/test/value", "a test counter",
        [&value](counter_path const&) -> counter_ptr {
            return std::make_shared<function_counter>(
                [&value] { return value; });
        });

    auto const v = reg.query("/test/value");
    EXPECT_TRUE(v.valid);
    EXPECT_DOUBLE_EQ(v.value, 3.0);
}

TEST(Registry, UnknownTypeGivesInvalid)
{
    counter_registry reg;
    auto const v = reg.query("/nope/value");
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(reg.get("/nope/value"), nullptr);
}

TEST(Registry, MalformedNameGivesInvalid)
{
    counter_registry reg;
    EXPECT_FALSE(reg.query("garbage").valid);
    EXPECT_FALSE(reg.query("").valid);
}

TEST(Registry, DuplicateRegistrationThrows)
{
    counter_registry reg;
    auto factory = [](counter_path const&) -> counter_ptr {
        return std::make_shared<function_counter>([] { return 0.0; });
    };
    reg.register_counter_type("/dup/x", "first", factory);
    EXPECT_THROW(
        reg.register_counter_type("/dup/x", "second", factory),
        std::invalid_argument);
}

TEST(Registry, InstancesAreCachedPerFullName)
{
    counter_registry reg;
    int instantiations = 0;
    reg.register_counter_type("/cache/x", "",
        [&instantiations](counter_path const&) -> counter_ptr {
            ++instantiations;
            return std::make_shared<function_counter>([] { return 1.0; });
        });

    (void) reg.get("/cache/x@a");
    (void) reg.get("/cache/x@a");
    EXPECT_EQ(instantiations, 1);
    (void) reg.get("/cache/x@b");    // distinct parameters = new instance
    EXPECT_EQ(instantiations, 2);
    (void) reg.get("/cache{locality#0}/x@a");
    EXPECT_EQ(instantiations, 3);
}

TEST(Registry, FactoryReturningNullGivesInvalid)
{
    counter_registry reg;
    reg.register_counter_type("/strict/x", "",
        [](counter_path const& path) -> counter_ptr {
            if (path.parameters.empty())
                return nullptr;
            return std::make_shared<function_counter>([] { return 1.0; });
        });
    EXPECT_FALSE(reg.query("/strict/x").valid);
    EXPECT_TRUE(reg.query("/strict/x@param").valid);
}

TEST(Registry, DiscoverListsTypesSorted)
{
    counter_registry reg;
    auto factory = [](counter_path const&) -> counter_ptr {
        return nullptr;
    };
    reg.register_counter_type("/z/last", "zd", factory);
    reg.register_counter_type("/a/first", "ad", factory);

    auto const types = reg.discover();
    ASSERT_EQ(types.size(), 2u);
    EXPECT_EQ(types[0].first, "/a/first");
    EXPECT_EQ(types[0].second, "ad");
    EXPECT_EQ(types[1].first, "/z/last");
}

TEST(Registry, ResetAllResetsEveryInstance)
{
    counter_registry reg;
    int resets = 0;
    reg.register_counter_type("/r/x", "",
        [&resets](counter_path const&) -> counter_ptr {
            return std::make_shared<function_counter>(
                [] { return 0.0; }, [&resets] { ++resets; });
        });
    (void) reg.get("/r/x@a");
    (void) reg.get("/r/x@b");
    reg.reset_all();
    EXPECT_EQ(resets, 2);
}

TEST(Registry, QueryWithResetPassesThrough)
{
    counter_registry reg;
    double value = 7.0;
    reg.register_counter_type("/q/x", "",
        [&value](counter_path const&) -> counter_ptr {
            return std::make_shared<function_counter>(
                [&value] { return value; }, [&value] { value = 0.0; });
        });
    EXPECT_DOUBLE_EQ(reg.query("/q/x", true).value, 7.0);
    EXPECT_DOUBLE_EQ(reg.query("/q/x").value, 0.0);
}

TEST(DeltaSampler, ReportsChangesBetweenCalls)
{
    counter_registry reg;
    double value = 100.0;
    reg.register_counter_type("/d/x", "",
        [&value](counter_path const&) -> counter_ptr {
            return std::make_shared<function_counter>(
                [&value] { return value; });
        });

    delta_sampler sampler(reg, "/d/x");
    value = 130.0;
    EXPECT_DOUBLE_EQ(sampler.peek(), 30.0);
    EXPECT_DOUBLE_EQ(sampler.delta(), 30.0);
    EXPECT_DOUBLE_EQ(sampler.delta(), 0.0);
    value = 150.0;
    EXPECT_DOUBLE_EQ(sampler.delta(), 20.0);
}

}    // namespace
