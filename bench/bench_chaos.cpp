/// \file bench_chaos.cpp
/// Goodput under crash/rejoin chaos: an all-to-all exchange runs for a
/// fixed window while a chaos thread kills and restarts localities at a
/// configurable rate.  Each row reports delivered goodput next to the
/// per-cause refusal split (shed / link_down / peer_failed), so the
/// cost of a death verdict — fenced backlog plus the fast-fail window
/// until rejoin — is visible as a function of the kill rate.
///
///     ./build/bench/bench_chaos [duration_ms=2500] [kills=0,1,2,4]
///
/// Machine-readable rows:
///     BENCH {"bench":"chaos","kills":...,"goodput_pps":...}
///
/// The kill schedule derives from one seed (printed, COAL_FAULT_SEED
/// overrides) so a surprising row replays exactly.

#include "bench_common.hpp"

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/parcel/action.hpp>

#include <cinttypes>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

namespace {

constexpr std::uint32_t chaos_n = 4;    // localities

std::atomic<std::uint64_t> g_delivered{0};

std::uint32_t chaos_sink(std::uint32_t tag)
{
    g_delivered.fetch_add(1);
    return tag;
}

}    // namespace

COAL_PLAIN_ACTION(chaos_sink, chaos_sink_action);

namespace {

using coal::parcel::delivery_error;
using coal::parcel::parcel;
using coal::parcel::peer_status;

// splitmix64: victim choices derive from the seed, not from rand().
std::uint64_t mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

coal::runtime_config chaos_config(std::uint64_t seed)
{
    coal::runtime_config cfg;
    cfg.num_localities = chaos_n;
    cfg.workers_per_locality = 1;    // keep thread count sane on small boxes
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    cfg.idle_sleep_us = 50;

    cfg.faults.seed = seed;

    cfg.reliability.enabled = true;
    cfg.reliability.ack_delay_us = 100;
    cfg.reliability.min_rto_us = 500;
    cfg.reliability.max_rto_us = 20000;

    cfg.flow.enabled = true;
    cfg.flow.initial_window_bytes = 64 * 1024;
    cfg.flow.window_bytes = 256 * 1024;
    cfg.flow.min_window_bytes = 16 * 1024;
    cfg.flow.link_soft_bytes = 1u << 20;
    cfg.flow.link_inflight_cap_bytes = 4u << 20;
    cfg.flow.pool_soft_bytes = 16u << 20;
    cfg.flow.pool_critical_bytes = 32u << 20;
    cfg.flow.pool_fallback_cap_bytes = 16u << 20;

    cfg.membership.enabled = true;
    cfg.membership.heartbeat_interval_us = 5000;
    cfg.membership.probe_interval_us = 10000;
    cfg.membership.min_dead_us = 150000;
    return cfg;
}

struct chaos_measurement
{
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t shed = 0;
    std::uint64_t link_down = 0;
    std::uint64_t peer_failed = 0;
    std::uint64_t deaths = 0;
    std::uint64_t rejoins = 0;
    double elapsed_s = 0.0;
};

/// One measurement window: every locality streams parcels at every
/// other for `duration_ms`, while `kills` kill/restart cycles run
/// concurrently (victims seed-derived, never the same twice in a row).
chaos_measurement measure(std::uint64_t seed, unsigned kills,
    unsigned duration_ms)
{
    chaos_measurement out;
    g_delivered.store(0);

    coal::runtime rt(chaos_config(seed));
    rt.enable_coalescing(chaos_sink_action::name(), {16, 500});

    std::atomic<std::uint64_t> shed{0}, link_down{0}, peer_failed{0};
    for (std::uint32_t s = 0; s != chaos_n; ++s)
    {
        rt.get_locality(s).parcels().set_delivery_error_handler(
            [&](delivery_error err, parcel&&) {
                switch (err)
                {
                case delivery_error::shed_overload:
                    shed.fetch_add(1);
                    break;
                case delivery_error::link_down:
                    link_down.fetch_add(1);
                    break;
                case delivery_error::peer_failed:
                    peer_failed.fetch_add(1);
                    break;
                }
            });
    }

    auto all_alive = [&] {
        for (std::uint32_t i = 0; i != chaos_n; ++i)
            for (std::uint32_t j = 0; j != chaos_n; ++j)
                if (i != j &&
                    rt.get_locality(i).parcels().peer_liveness(j) !=
                        peer_status::alive)
                    return false;
        return true;
    };

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> offered{0};

    // A crashed or fenced destination drops delivery throughput to
    // near zero while offers keep succeeding into the coalescer, so an
    // unpaced sender would bank minutes of drain work during every
    // blackout.  Cap the in-flight backlog (offered but not yet
    // delivered or refused) to keep the post-chaos drain bounded.
    // Signed: a parcel whose ack died with the victim is counted both
    // delivered and peer_failed, so "done" can slightly exceed offered.
    auto backlog = [&]() -> std::int64_t {
        auto const done = g_delivered.load() + shed.load() +
            link_down.load() + peer_failed.load();
        return static_cast<std::int64_t>(offered.load()) -
            static_cast<std::int64_t>(done);
    };

    // Senders: all-to-all, paced by the backlog cap (flow control
    // defers under pressure; a crashed sender's puts fast-fail and are
    // counted like every other refusal).
    std::vector<std::thread> senders;
    senders.reserve(chaos_n);
    for (std::uint32_t s = 0; s != chaos_n; ++s)
    {
        senders.emplace_back([&, s] {
            std::uint32_t tag = 0;
            while (!stop.load(std::memory_order_relaxed))
            {
                while (backlog() > 4000 &&
                    !stop.load(std::memory_order_relaxed))
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                for (std::uint32_t d = 0; d != chaos_n; ++d)
                {
                    if (d == s)
                        continue;
                    rt.get_locality(s).apply<chaos_sink_action>(
                        coal::agas::locality_id{d}, tag);
                    offered.fetch_add(1, std::memory_order_relaxed);
                }
                ++tag;
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        });
    }

    // Chaos: spread `kills` kill/restart cycles across the window.
    std::thread chaos([&] {
        for (unsigned k = 0; k != kills && !stop.load(); ++k)
        {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(duration_ms / (2 * kills + 1)));
            auto const victim =
                static_cast<std::uint32_t>(mix(seed + k) % chaos_n);
            rt.kill_locality(victim);
            // Past the death floor so the verdict actually lands.
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
            rt.restart_locality(victim);
            coal::stopwatch rejoin;
            while (!all_alive() && rejoin.elapsed_ms() < 10000.0)
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    coal::stopwatch clock;
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    stop.store(true);
    for (auto& t : senders)
        t.join();
    chaos.join();
    rt.quiesce();
    out.elapsed_s = clock.elapsed_ms() / 1e3;

    out.offered = offered.load();
    out.delivered = g_delivered.load();
    out.shed = shed.load();
    out.link_down = link_down.load();
    out.peer_failed = peer_failed.load();
    for (std::uint32_t s = 0; s != chaos_n; ++s)
    {
        auto const& c = rt.get_locality(s).parcels().counters();
        out.deaths += c.peers_declared_dead.load();
        out.rejoins += c.peer_rejoins.load();
    }

    rt.stop();
    return out;
}

}    // namespace

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const duration_ms =
        static_cast<unsigned>(cli.get_int("duration_ms", 2500));

    coal::bench::print_header("goodput vs kill rate under crash/rejoin chaos",
        "robustness extension: failure detection, fencing, epoched rejoin "
        "(DESIGN.md §12)");

    std::uint64_t const seed =
        coal::net::fault_plan::resolve_seed(0xBE7CC4A05ull);
    std::printf("seed=%llu (set COAL_FAULT_SEED to replay)\n\n",
        static_cast<unsigned long long>(seed));

    coal::bench::csv_sink csv(cli,
        "kills,offered,delivered,shed,link_down,peer_failed,goodput_pps");

    std::printf("%-7s %-10s %-10s %-7s %-10s %-11s %-8s %-9s %-11s\n",
        "kills", "offered", "delivered", "shed", "link-down", "peer-fail",
        "deaths", "rejoins", "goodput/s");
    for (unsigned const kills : {0u, 1u, 2u, 4u})
    {
        auto const m = measure(seed, kills, duration_ms);
        double const goodput = m.elapsed_s > 0.0 ?
            static_cast<double>(m.delivered) / m.elapsed_s :
            0.0;
        std::printf("%-7u %-10" PRIu64 " %-10" PRIu64 " %-7" PRIu64
                    " %-10" PRIu64 " %-11" PRIu64 " %-8" PRIu64 " %-9" PRIu64
                    " %-11.0f\n",
            kills, m.offered, m.delivered, m.shed, m.link_down, m.peer_failed,
            m.deaths, m.rejoins, goodput);
        std::printf("BENCH {\"bench\":\"chaos\",\"kills\":%u,\"duration_ms\""
                    ":%u,\"offered\":%" PRIu64 ",\"delivered\":%" PRIu64
                    ",\"shed\":%" PRIu64 ",\"link_down\":%" PRIu64
                    ",\"peer_failed\":%" PRIu64 ",\"deaths\":%" PRIu64
                    ",\"rejoins\":%" PRIu64 ",\"goodput_pps\":%.0f"
                    ",\"elapsed_s\":%.3f}\n",
            kills, duration_ms, m.offered, m.delivered, m.shed, m.link_down,
            m.peer_failed, m.deaths, m.rejoins, goodput, m.elapsed_s);
        csv.row("%u,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                ",%" PRIu64 ",%.0f",
            kills, m.offered, m.delivered, m.shed, m.link_down, m.peer_failed,
            goodput);
    }

    std::printf("\nexpectation: goodput degrades gracefully with the kill "
                "rate; every refused parcel is split across shed / "
                "link_down / peer_failed (no silent loss), and deaths == "
                "rejoins once the window ends healed.\n");
    return 0;
}
