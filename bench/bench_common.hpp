#pragma once

/// \file bench_common.hpp
/// Shared plumbing for the figure-reproduction harnesses: configuration,
/// repeated-run aggregation (the paper averages three runs per
/// configuration and discards warm-up effects), and table printing.

#include <coal/apps/parquet_app.hpp>
#include <coal/apps/toy_app.hpp>
#include <coal/common/config.hpp>
#include <coal/common/stats.hpp>
#include <coal/runtime/runtime.hpp>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace coal::bench {

/// Standard bench command line: `key=value` overrides.
inline config parse_cli(int argc, char** argv)
{
    config cfg;
    cfg.load_environment();
    cfg.parse_args(argc, argv);
    return cfg;
}

inline void print_header(std::string const& title, std::string const& paper)
{
    std::printf("## %s\n", title.c_str());
    std::printf("reproduces: %s\n\n", paper.c_str());
}

/// Optional machine-readable output: pass `csv=path` on the command line
/// and every figure bench mirrors its data rows into that file
/// (plot-ready, one header line).
class csv_sink
{
public:
    csv_sink(config const& cfg, char const* header)
    {
        if (auto path = cfg.get("csv"))
        {
            file_ = std::fopen(path->c_str(), "w");
            if (file_ != nullptr)
                std::fprintf(file_, "%s\n", header);
            else
                std::fprintf(stderr, "cannot open csv file '%s'\n",
                    path->c_str());
        }
    }

    ~csv_sink()
    {
        if (file_ != nullptr)
            std::fclose(file_);
    }

    csv_sink(csv_sink const&) = delete;
    csv_sink& operator=(csv_sink const&) = delete;

#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    void row(char const* fmt, ...)
    {
        if (file_ == nullptr)
            return;
        std::va_list args;
        va_start(args, fmt);
        std::vfprintf(file_, fmt, args);
        va_end(args);
        std::fputc('\n', file_);
    }

private:
    std::FILE* file_ = nullptr;
};

/// One toy-app configuration measured over `repeats` fresh runtimes;
/// the first phase of each run is treated as warm-up and discarded
/// (allocator/page-cache effects dominate it on a cold process).
struct toy_measurement
{
    double mean_phase_s = 0.0;
    double mean_overhead = 0.0;
    double mean_messages = 0.0;
    running_stats phase_times;
};

inline toy_measurement measure_toy(apps::toy_params params,
    unsigned repeats, unsigned workers = 1)
{
    toy_measurement out;
    running_stats overheads, messages;

    params.phases += 1;    // warm-up phase, dropped below

    for (unsigned r = 0; r != repeats; ++r)
    {
        runtime_config cfg;
        cfg.num_localities = 2;
        cfg.workers_per_locality = workers;
        cfg.apply_coalescing_defaults = false;
        runtime rt(cfg);

        auto const result = apps::run_toy_app(rt, params);
        for (std::size_t i = 1; i < result.phases.size(); ++i)
        {
            auto const& phase = result.phases[i];
            out.phase_times.add(phase.metrics.duration_s);
            overheads.add(phase.metrics.network_overhead);
            messages.add(static_cast<double>(phase.metrics.messages_sent));
        }
        rt.stop();
    }

    out.mean_phase_s = out.phase_times.mean();
    out.mean_overhead = overheads.mean();
    out.mean_messages = messages.mean();
    return out;
}

/// One parquet configuration measured over `repeats` fresh runtimes;
/// the first iteration of each run is warm-up and discarded.
struct parquet_measurement
{
    double mean_iteration_s = 0.0;
    double mean_overhead = 0.0;
    running_stats iteration_times;
    std::vector<double> per_iteration_cumulative_s;    // last run's curve
};

inline parquet_measurement measure_parquet(apps::parquet_params params,
    std::uint32_t localities, unsigned repeats, unsigned workers = 1,
    std::uint32_t nodes = 1, bool hierarchical = false)
{
    parquet_measurement out;
    running_stats overheads;

    params.iterations += 1;    // warm-up iteration, dropped below

    for (unsigned r = 0; r != repeats; ++r)
    {
        runtime_config cfg;
        cfg.num_localities = localities;
        cfg.workers_per_locality = workers;
        cfg.apply_coalescing_defaults = false;
        cfg.num_nodes = nodes;
        cfg.hierarchical_routing = hierarchical;
        runtime rt(cfg);

        auto const result = apps::run_parquet_app(rt, params);
        if (!result.checksum_ok)
            std::fprintf(stderr,
                "WARNING: parquet checksum failed (error %.2e)\n",
                result.checksum_error);

        out.per_iteration_cumulative_s.clear();
        double cumulative = 0.0;
        for (std::size_t i = 1; i < result.iterations.size(); ++i)
        {
            auto const& iter = result.iterations[i];
            out.iteration_times.add(iter.metrics.duration_s);
            overheads.add(iter.metrics.network_overhead);
            cumulative += iter.metrics.duration_s;
            out.per_iteration_cumulative_s.push_back(cumulative);
        }
        rt.stop();
    }

    out.mean_iteration_s = out.iteration_times.mean();
    out.mean_overhead = overheads.mean();
    return out;
}

}    // namespace coal::bench
