/// \file bench_timer_accuracy.cpp
/// Reproduces the paper's §II-B flush-timer accuracy experiment: "we
/// observed that the flush timer fires within on average 33 µs of the
/// desired fire time", versus a sleep-based software timer "limited by
/// the time slicing of the Operating System which is in the range of
/// milliseconds".
///
///     ./bench_timer_accuracy [samples=200]

#include <coal/timing/timer_accuracy.hpp>

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const samples =
        static_cast<std::uint64_t>(cfg.get_int("samples", 200));

    coal::bench::print_header("Flush-timer accuracy",
        "paper §II-B (dedicated-thread deadline timer, ~33 us mean error)");

    std::printf("%-12s %-24s %-24s %-22s\n", "delay [us]",
        "deadline (polling) [us]", "deadline (default) [us]",
        "sleep timer err [us]");
    std::printf("%-12s %-12s %-11s %-12s %-11s %-11s %-10s\n", "", "mean",
        "max", "mean", "max", "mean", "max");

    double polling_mean_sum = 0.0;
    double polling_max = 0.0;
    int rows = 0;
    for (std::int64_t delay : {500, 1000, 2000, 4000, 10000, 50000})
    {
        // "Polling" = the paper's dedicated-hardware-thread configuration:
        // the timer thread is allowed to busy-poll across the whole OS
        // wakeup-jitter window (~1.5 ms on this host).
        auto const polling = coal::timing::measure_deadline_timer_accuracy(
            delay, samples, 1500);
        auto const dedicated =
            coal::timing::measure_deadline_timer_accuracy(delay, samples);
        auto const sleeping =
            coal::timing::measure_sleep_timer_accuracy(delay, samples / 4);

        std::printf(
            "%-12lld %-12.2f %-11.2f %-12.2f %-11.2f %-11.2f %-10.2f\n",
            static_cast<long long>(delay), polling.mean_error_us,
            polling.max_error_us, dedicated.mean_error_us,
            dedicated.max_error_us, sleeping.mean_error_us,
            sleeping.max_error_us);

        polling_mean_sum += polling.mean_error_us;
        polling_max = std::max(polling_max, polling.max_error_us);
        ++rows;
    }
    std::printf("BENCH {\"bench\":\"timer_accuracy\","
                "\"mean_error_us\":%.2f,\"max_error_us\":%.2f,"
                "\"samples_per_delay\":%llu}\n",
        polling_mean_sum / rows, polling_max,
        static_cast<unsigned long long>(samples));

    std::printf("\npaper reports ~33 us mean error for its dedicated-thread "
                "timer; the polling column\nis the faithful equivalent of "
                "that design.  The sleep-based timer is at the mercy of\n"
                "OS time slicing (paper: milliseconds; this virtualized "
                "host: hundreds of us to ms).\n");
    return 0;
}
