/// \file bench_ablation_bypass.cpp
/// Ablation: the sparse-traffic bypass of Algorithm 1 ("we overcome this
/// hurdle by coalescing the scheduled parcels only when the time between
/// them is less than the maximum wait time", §II-B).  Without it, a
/// sparse phase pays the full flush-timer wait on (nearly) every parcel;
/// with it, sparse parcels go out immediately.
///
/// Workload: request/response round trips issued one at a time with a
/// gap larger than the wait time — per-request latency is the metric.
///
///     ./bench_ablation_bypass [requests=60] [interval=4000]

#include <coal/threading/future.hpp>

#include "bench_common.hpp"

#include <complex>
#include <thread>

namespace {

double mean_latency_us(bool bypass, unsigned requests,
    std::int64_t interval_us)
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    coal::runtime rt(cfg);

    coal::coalescing::coalescing_params params{64, interval_us};
    params.sparse_bypass = bypass;
    rt.enable_coalescing(coal::apps::toy_action_name(), params);

    coal::running_stats latency;
    rt.run_on(0, [&](coal::locality& here) {
        auto const other = here.find_remote_localities().front();
        for (unsigned i = 0; i != requests; ++i)
        {
            coal::stopwatch sw;
            auto f = here.async<toy_get_cplx_action>(other);
            f.wait();
            latency.add(static_cast<double>(sw.elapsed_us()));
            // Sparse arrival: gap comfortably above the wait time.
            std::this_thread::sleep_for(
                std::chrono::microseconds(interval_us * 3 / 2));
        }
    });
    rt.stop();
    return latency.mean();
}

}    // namespace

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const requests =
        static_cast<unsigned>(cli.get_int("requests", 60));
    auto const interval = cli.get_int("interval", 4000);

    coal::bench::print_header(
        "Ablation — Algorithm 1's sparse-traffic bypass (tslp > interval)",
        "sparse round trips; metric = per-request latency");

    double const with_bypass = mean_latency_us(true, requests, interval);
    double const without = mean_latency_us(false, requests, interval);

    std::printf("%-22s %-22s\n", "configuration", "mean latency [us]");
    std::printf("%-22s %-22.1f\n", "bypass on (paper)", with_bypass);
    std::printf("%-22s %-22.1f\n", "bypass off", without);
    std::printf("\nwithout the bypass every sparse parcel waits for the "
                "flush timer (~%lld us x 2 per\nround trip); the bypass "
                "removes that: %.1fx lower latency here.\n",
        static_cast<long long>(interval), without / with_bypass);
    return 0;
}
