/// \file bench_fig7_parquet_correlation.cpp
/// Reproduces Fig. 7: scatter of average network overhead vs average
/// time per iteration for the parquet application across the coalescing
/// parameter sweep.  Paper: Pearson r = 0.92, and most of the parameter
/// space produces larger overhead than the optimum — an arbitrary choice
/// of parameters is likely suboptimal.
///
///     ./bench_fig7_parquet_correlation [nc=24] [repeats=2]

#include "bench_common.hpp"

#include <coal/common/stats.hpp>

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const nc = static_cast<std::uint32_t>(cfg.get_int("nc", 24));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 3));

    coal::bench::print_header(
        "Fig. 7 — parquet: average network overhead vs time per iteration",
        "one dot per parameter set; paper Pearson r = 0.92");

    std::printf("%-10s %-14s %-12s %-18s\n", "nparcels", "interval [us]",
        "overhead", "iter time [ms]");
    coal::bench::csv_sink csv(
        cfg, "nparcels,interval_us,overhead,iter_time_ms");

    std::vector<double> overheads, times;
    double best_time = 1e300;
    double best_overhead = 0.0;

    // Same parameter grid as the Fig. 8 sweep — the paper derives both
    // figures from one sweep, including the disabled boundary settings.
    for (std::size_t n : {1, 2, 4, 8, 16, 32})
    {
        for (std::int64_t interval : {1, 1000, 4000, 8000})
        {
            coal::apps::parquet_params params;
            params.nc = nc;
            params.iterations = 2;
            params.coalescing = {n, interval};

            auto const m = coal::bench::measure_parquet(params, 4, repeats);
            overheads.push_back(m.mean_overhead);
            times.push_back(m.mean_iteration_s * 1e3);
            std::printf("%-10zu %-14lld %-12.4f %-18.2f\n", n,
                static_cast<long long>(interval), m.mean_overhead,
                m.mean_iteration_s * 1e3);
            csv.row("%zu,%lld,%.6f,%.4f", n,
                static_cast<long long>(interval), m.mean_overhead,
                m.mean_iteration_s * 1e3);

            if (m.mean_iteration_s < best_time)
            {
                best_time = m.mean_iteration_s;
                best_overhead = m.mean_overhead;
            }
        }
    }

    double const r = coal::pearson_correlation(overheads, times);
    std::printf(
        "\nPearson correlation (overhead vs time): %.3f   (paper: 0.92)\n",
        r);

    unsigned worse = 0;
    for (double o : overheads)
    {
        if (o > best_overhead)
            ++worse;
    }
    std::printf("parameter sets with more overhead than the optimum: %u of "
                "%zu (paper: 'most')\n",
        worse, overheads.size());
    return 0;
}
