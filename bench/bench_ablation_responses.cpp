/// \file bench_ablation_responses.cpp
/// Ablation: coalescing result (continuation) parcels with the same
/// policy as their requests — the design choice DESIGN.md §2 calls out.
/// Without it, the uncompressed response stream caps the achievable
/// speedup of request coalescing near 2x for round-trip workloads like
/// the toy app.
///
///     ./bench_ablation_responses [parcels=8000]

#include <coal/threading/future.hpp>

#include "bench_common.hpp"

#include <complex>

namespace {

struct outcome
{
    double phase_s = 0.0;
    std::uint64_t wire_messages = 0;
};

outcome run(bool coalesce_responses, std::size_t parcels)
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    cfg.coalesce_responses = coalesce_responses;
    coal::runtime rt(cfg);
    rt.enable_coalescing(coal::apps::toy_action_name(), {64, 4000});

    coal::apps::toy_params params;
    params.parcels_per_phase = parcels;
    params.phases = 3;    // first acts as warm-up
    params.coalescing = {64, 4000};
    params.enable_coalescing = false;    // already enabled above
    auto const result = coal::apps::run_toy_app(rt, params);
    rt.quiesce();

    outcome out;
    coal::running_stats times;
    for (std::size_t i = 1; i < result.phases.size(); ++i)
        times.add(result.phases[i].metrics.duration_s);
    out.phase_s = times.mean();
    out.wire_messages = rt.network().stats().messages_sent;
    rt.stop();
    return out;
}

}    // namespace

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cli.get_int("parcels", 8000));

    coal::bench::print_header(
        "Ablation — response-parcel coalescing (DESIGN.md §2)",
        "toy app, nparcels=64, wait 4000 us");

    auto const with = run(true, parcels);
    auto const without = run(false, parcels);

    std::printf("%-26s %-16s %-16s\n", "configuration", "phase time [ms]",
        "wire messages");
    std::printf("%-26s %-16.2f %-16llu\n", "responses coalesced",
        with.phase_s * 1e3,
        static_cast<unsigned long long>(with.wire_messages));
    std::printf("%-26s %-16.2f %-16llu\n", "responses uncoalesced",
        without.phase_s * 1e3,
        static_cast<unsigned long long>(without.wire_messages));

    std::printf("\nresponse coalescing: %.2fx faster, %.1fx fewer messages\n",
        without.phase_s / with.phase_s,
        static_cast<double>(without.wire_messages) /
            static_cast<double>(with.wire_messages));
    return 0;
}
