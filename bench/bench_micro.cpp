/// \file bench_micro.cpp
/// google-benchmark microbenchmarks for the substrate the experiments
/// stand on: serialization, message framing, scheduler dispatch, future
/// round trips, counter queries, histogram updates and timer churn.

#include <coal/apps/toy_app.hpp>
#include <coal/common/histogram.hpp>
#include <coal/common/mpmc_queue.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/core/coalescing_message_handler.hpp>
#include <coal/net/loopback.hpp>
#include <coal/net/sim_network.hpp>
#include <coal/net/socket_transport.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/perf/registry.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/serialization/archive.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/threading/future.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>
#include <coal/trace/tracer.hpp>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <complex>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace {

using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::serialization::to_bytes;

int micro_noop(int x)
{
    return x;
}

std::atomic<std::uint64_t> g_receive_executed{0};

int receive_sink(int x)
{
    g_receive_executed.fetch_add(1, std::memory_order_relaxed);
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(micro_noop, micro_noop_action);
COAL_PLAIN_ACTION(receive_sink, receive_sink_action);

namespace {

void BM_SerializeComplexVector(benchmark::State& state)
{
    std::vector<std::complex<double>> const payload(
        static_cast<std::size_t>(state.range(0)),
        std::complex<double>(1.5, -0.5));
    for (auto _ : state)
    {
        auto buf = to_bytes(payload);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_SerializeComplexVector)->Arg(1)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeserializeComplexVector(benchmark::State& state)
{
    auto const buf = to_bytes(std::vector<std::complex<double>>(
        static_cast<std::size_t>(state.range(0)),
        std::complex<double>(1.5, -0.5)));
    for (auto _ : state)
    {
        auto v = from_bytes<std::vector<std::complex<double>>>(buf);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_DeserializeComplexVector)->Arg(64)->Arg(4096);

void BM_EncodeMessageFrame(benchmark::State& state)
{
    std::vector<coal::parcel::parcel> batch;
    for (int i = 0; i != state.range(0); ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1;
        p.action = micro_noop_action::id();
        p.arguments = micro_noop_action::make_arguments(i);
        batch.push_back(std::move(p));
    }
    for (auto _ : state)
    {
        auto wire = coal::parcel::encode_message(batch);
        benchmark::DoNotOptimize(wire.size());
    }
}
BENCHMARK(BM_EncodeMessageFrame)->Arg(1)->Arg(16)->Arg(128);

void BM_DecodeMessageFrame(benchmark::State& state)
{
    std::vector<coal::parcel::parcel> batch;
    for (int i = 0; i != state.range(0); ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1;
        p.action = micro_noop_action::id();
        p.arguments = micro_noop_action::make_arguments(i);
        batch.push_back(std::move(p));
    }
    auto const wire = coal::parcel::encode_message(batch);
    for (auto _ : state)
    {
        auto parcels = coal::parcel::decode_message(wire);
        benchmark::DoNotOptimize(parcels.data());
    }
}
BENCHMARK(BM_DecodeMessageFrame)->Arg(1)->Arg(16)->Arg(128);

void BM_SchedulerPostExecute(benchmark::State& state)
{
    coal::threading::scheduler_config cfg;
    cfg.num_workers = 1;
    coal::threading::scheduler sched(cfg);
    std::atomic<std::int64_t> sink{0};
    for (auto _ : state)
    {
        for (int i = 0; i != 256; ++i)
            sched.post([&sink] { sink.fetch_add(1); });
        sched.wait_idle();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SchedulerPostExecute);

void BM_FutureRoundTrip(benchmark::State& state)
{
    for (auto _ : state)
    {
        coal::threading::promise<int> p;
        auto f = p.get_future();
        p.set_value(1);
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_FutureRoundTrip);

void BM_HistogramAdd(benchmark::State& state)
{
    coal::concurrent_histogram h({0, 100000, 20});
    std::int64_t v = 0;
    for (auto _ : state)
    {
        h.add(v);
        v = (v + 997) % 120000;
    }
    benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_CounterQuery(benchmark::State& state)
{
    coal::perf::counter_registry reg;
    double value = 1.0;
    reg.register_counter_type("/bench/value", "",
        [&value](coal::perf::counter_path const&) {
            return std::make_shared<coal::perf::function_counter>(
                [&value] { return value; });
        });
    for (auto _ : state)
    {
        auto v = reg.query("/bench{locality#0}/value@param");
        benchmark::DoNotOptimize(v.value);
    }
}
BENCHMARK(BM_CounterQuery);

void BM_TimerScheduleCancel(benchmark::State& state)
{
    coal::timing::deadline_timer_service timers;
    for (auto _ : state)
    {
        auto id = timers.schedule_after(1000000, [] {});
        timers.cancel(id);
    }
}
BENCHMARK(BM_TimerScheduleCancel);

void BM_SpinlockUncontended(benchmark::State& state)
{
    coal::spinlock lock;
    for (auto _ : state)
    {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_SpinlockUncontended);

// ---- zero-copy pipeline report ------------------------------------------
//
// Runs the coalesced toy-app path against the live buffer pool and reports
// measured bytes-copied-per-parcel, comparing against an emulation of the
// pre-pool pipeline (serialize into a growing vector frame, copy argument
// images in on encode and out on decode).  Emitted as a BENCH line so the
// driver can track the copy reduction across commits.

void report_zero_copy_pipeline()
{
    using coal::serialization::buffer_pool;

    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    coal::runtime rt(cfg);

    coal::apps::toy_params params;
    params.parcels_per_phase = 20000;
    params.phases = 2;
    params.enable_coalescing = true;
    params.coalescing = {64, 4000};

    // Warm-up: populate the pool free lists and code paths.
    (void) coal::apps::run_toy_app(rt, params);
    rt.quiesce();

    auto& counters = rt.counters();
    auto const before = buffer_pool::global().stats();
    double const parcels0 = counters.query("/parcels/count/sent").value;
    double const messages0 = counters.query("/messages/count/sent").value;

    (void) coal::apps::run_toy_app(rt, params);
    rt.quiesce();

    auto const after = buffer_pool::global().stats();
    double const parcels =
        counters.query("/parcels/count/sent").value - parcels0;
    double const messages =
        counters.query("/messages/count/sent").value - messages0;
    rt.stop();

    double const copied = static_cast<double>(
        (after.bytes_copied - before.bytes_copied) +
        (after.bytes_flattened - before.bytes_flattened));
    double const referenced =
        static_cast<double>(after.bytes_referenced - before.bytes_referenced);
    double const hits = static_cast<double>(after.hits - before.hits);
    double const misses = static_cast<double>(after.misses - before.misses);

    // Decode borrows every argument image by reference, so the referenced
    // delta measures total argument bytes — the input to the legacy model.
    double const args_per_parcel = parcels > 0 ? referenced / parcels : 0.0;
    std::size_t const batch = static_cast<std::size_t>(
        messages > 0 ? parcels / messages + 0.5 : 1.0);

    // Legacy emulation: one coalesced frame in the pre-pool pipeline.
    // The frame vector doubles as it grows (re-copying its contents), each
    // argument image is memcpy'd in on encode and copied out on decode.
    auto legacy_frame_copies = [](std::size_t nparcels,
                                   std::size_t args) -> std::uint64_t {
        std::uint64_t copied_bytes = 0;
        std::size_t size = 0, cap = 0;
        auto append = [&](std::size_t n, bool payload) {
            if (size + n > cap)
            {
                copied_bytes += size;    // vector growth re-copy
                cap = std::max({cap * 2, size + n, std::size_t(128)});
            }
            if (payload)
                copied_bytes += n;    // memcpy of a serialized image
            size += n;
        };
        append(coal::parcel::frame_prefix_bytes, false);
        for (std::size_t i = 0; i != nparcels; ++i)
        {
            append(coal::parcel::parcel::header_bytes + 8, false);
            append(args, true);
        }
        copied_bytes +=
            static_cast<std::uint64_t>(nparcels) * args;    // decode copy-out
        return copied_bytes;
    };

    double const new_pp = parcels > 0 ? copied / parcels : 0.0;
    double const legacy_pp = batch > 0
        ? static_cast<double>(legacy_frame_copies(batch,
              static_cast<std::size_t>(args_per_parcel + 0.5))) /
            static_cast<double>(batch)
        : 0.0;

    std::printf("BENCH {\"bench\":\"micro_zero_copy\","
                "\"parcels\":%.0f,\"messages\":%.0f,"
                "\"bytes_copied_per_parcel\":%.2f,"
                "\"legacy_bytes_copied_per_parcel\":%.2f,"
                "\"copy_reduction\":%.2f,"
                "\"bytes_referenced_per_parcel\":%.2f,"
                "\"pool_hit_rate\":%.4f,"
                "\"allocs\":%.0f,\"allocs_per_parcel\":%.4f}\n",
        parcels, messages, new_pp, legacy_pp,
        new_pp > 0.0 ? legacy_pp / new_pp : 0.0, args_per_parcel,
        hits + misses > 0 ? hits / (hits + misses) : 0.0, misses,
        parcels > 0 ? misses / parcels : 0.0);
}

// ---- enqueue contention report -------------------------------------------
//
// Hammers the coalescer's enqueue path from 1/2/4/8 producer threads, all
// aiming at one destination (worst case: one shard lock) and spread across
// eight destinations (best case: disjoint shards), and compares against a
// faithful emulation of the pre-sharding design — one global std::mutex
// over the queue map plus the old spinlock-guarded arrival statistics.
//
// The host running this may have few cores (CI containers often expose
// one), where no locking scheme can show parallel speedup, so the report
// also emits a *recorded emulation* of 8-thread spread-destination
// throughput built from same-run single-thread measurements:
//
//   baseline: every enqueue runs under the one mutex, so throughput is
//     capped at 1/t_baseline regardless of thread count (generous: lock
//     hand-off cost under contention is ignored);
//   sharded:  spread producers share no lock, and every per-op cost
//     (clock read, shard spinlock, queue push, striped statistics)
//     lands on thread-private or shard-private cachelines, so it
//     parallelizes; the only cross-thread serialization left is the
//     single arrival-order exchange in record_parcel, measured
//     separately.
//
//   modeled_8t_speedup = min(8/t_sharded, 1/t_exchange) / (1/t_baseline)

std::vector<coal::parcel::parcel> make_parcels(
    std::size_t count, std::uint32_t dst)
{
    std::vector<coal::parcel::parcel> parcels;
    parcels.reserve(count);
    for (std::size_t i = 0; i != count; ++i)
    {
        coal::parcel::parcel p;
        p.dest = dst;
        p.action = micro_noop_action::id();
        p.arguments =
            micro_noop_action::make_arguments(static_cast<int>(i));
        parcels.push_back(std::move(p));
    }
    return parcels;
}

/// The pre-sharding send path, reproduced: spinlock-guarded parameter
/// snapshot (the old shared_params), one mutex over the whole queue map
/// (batch hand-off under the lock), the old global-spinlock arrival
/// statistics, byte accounting, and the trace hook — everything the old
/// enqueue did per parcel except arming the flush timer (first parcel
/// per destination only, so omitting it favours the baseline and keeps
/// the recorded comparison conservative).
struct global_mutex_coalescer
{
    coal::spinlock params_lock;
    coal::coalescing::coalescing_params params;
    std::mutex mutex;
    std::unordered_map<std::uint32_t, std::vector<coal::parcel::parcel>>
        queues;
    std::unordered_map<std::uint32_t, std::size_t> queued_bytes;
    std::atomic<std::uint64_t> parcels{0};
    coal::spinlock arrival_lock;
    std::int64_t last_arrival_ns = -1;
    std::uint64_t gap_count = 0;
    double gap_sum_us = 0.0;
    coal::concurrent_histogram hist{{0, 100000, 20}};

    void enqueue(coal::parcel::parcel&& p)
    {
        coal::coalescing::coalescing_params snapshot;
        {
            std::lock_guard lock(params_lock);
            snapshot = params;
        }
        parcels.fetch_add(1, std::memory_order_relaxed);
        std::int64_t const now = coal::now_ns();
        std::int64_t gap = -1;
        {
            std::lock_guard lock(arrival_lock);
            if (last_arrival_ns >= 0)
            {
                gap = now - last_arrival_ns;
                ++gap_count;
                gap_sum_us += static_cast<double>(gap) / 1000.0;
            }
            last_arrival_ns = now;
        }
        if (gap >= 0)
            hist.add(gap / 1000);
        std::uint64_t const action = p.action;
        std::lock_guard lock(mutex);
        auto& queue = queues[p.dest];
        queued_bytes[p.dest] += p.wire_size();
        queue.push_back(std::move(p));
        coal::trace::tracer::global().record(0,
            coal::trace::event_kind::coalescing_queued, action, queue.size());
        benchmark::DoNotOptimize(snapshot.nparcels);
    }
};

/// Run `threads` producers, thread t enqueueing `per_thread` pre-built
/// parcels through `enqueue`; returns parcels/second.
template <typename Enqueue>
double run_producers(unsigned threads, bool spread, std::size_t per_thread,
    Enqueue&& enqueue)
{
    std::vector<std::vector<coal::parcel::parcel>> inputs;
    for (unsigned t = 0; t != threads; ++t)
        inputs.push_back(
            make_parcels(per_thread, spread ? 1 + (t & 7) : 1));

    std::atomic<bool> start{false};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t != threads; ++t)
    {
        workers.emplace_back([&, t] {
            while (!start.load(std::memory_order_acquire))
                coal::cpu_relax();
            for (auto& p : inputs[t])
                enqueue(std::move(p));
        });
    }
    std::int64_t const t0 = coal::now_ns();
    start.store(true, std::memory_order_release);
    for (auto& w : workers)
        w.join();
    std::int64_t const t1 = coal::now_ns();
    return static_cast<double>(threads * per_thread) * 1e9 /
        static_cast<double>(t1 - t0);
}

void report_enqueue_contention()
{
    constexpr std::size_t per_thread = 40000;
    // Large nparcels/interval: the measured region is pure enqueue (queue
    // mutation + arrival statistics), no flush traffic — identical work
    // for both implementations.
    coal::coalescing::coalescing_params params;
    params.nparcels = 1u << 30;
    params.interval_us = 10000000;
    params.max_buffer_bytes = std::size_t(1) << 40;

    auto run_sharded = [&](unsigned threads, bool spread) {
        coal::net::loopback_transport transport(16);
        coal::threading::scheduler_config cfg;
        cfg.num_workers = 1;
        coal::threading::scheduler sched(cfg);
        coal::parcel::parcelhandler parcels(0, transport, sched);
        coal::timing::deadline_timer_service timers;
        coal::coalescing::coalescing_message_handler handler("bench",
            parcels,
            timers, std::make_shared<coal::coalescing::shared_params>(params),
            std::make_shared<coal::coalescing::coalescing_counters>());
        return run_producers(threads, spread, per_thread,
            [&](coal::parcel::parcel&& p) { handler.enqueue(std::move(p)); });
    };
    auto run_baseline = [&](unsigned threads, bool spread) {
        global_mutex_coalescer handler;
        return run_producers(threads, spread, per_thread,
            [&](coal::parcel::parcel&& p) { handler.enqueue(std::move(p)); });
    };

    for (unsigned threads : {1u, 2u, 4u, 8u})
    {
        for (bool spread : {false, true})
        {
            double const sharded = run_sharded(threads, spread);
            double const baseline = run_baseline(threads, spread);
            std::printf("BENCH {\"bench\":\"micro_enqueue_contention\","
                        "\"threads\":%u,\"dst\":\"%s\","
                        "\"sharded_parcels_per_sec\":%.0f,"
                        "\"global_mutex_parcels_per_sec\":%.0f,"
                        "\"speedup\":%.2f}\n",
                threads, spread ? "spread" : "same", sharded, baseline,
                baseline > 0 ? sharded / baseline : 0.0);
        }
    }

    // Recorded emulation of multi-core behaviour from single-thread
    // timings (see the comment block above).  Best of three: this often
    // runs on oversubscribed CI/VM hosts where any single run can eat a
    // scheduling stall.
    auto best_of3 = [](auto&& run) {
        double best = 0.0;
        for (int i = 0; i != 3; ++i)
            best = std::max(best, run());
        return best;
    };
    double const t_sharded_ns =
        1e9 / best_of3([&] { return run_sharded(1, true); });
    double const t_baseline_ns =
        1e9 / best_of3([&] { return run_baseline(1, true); });

    // The serialized cost per enqueue: one acq_rel exchange on the shared
    // last-arrival cell.  Everything else in the sharded enqueue path
    // writes thread- or shard-private cachelines and parallelizes.
    std::atomic<std::int64_t> last{-1};
    constexpr std::size_t atomic_iters = 2000000;
    std::int64_t const a0 = coal::now_ns();
    for (std::size_t i = 0; i != atomic_iters; ++i)
        benchmark::DoNotOptimize(last.exchange(
            static_cast<std::int64_t>(i), std::memory_order_acq_rel));
    std::int64_t const a1 = coal::now_ns();
    double const t_atomics_ns =
        static_cast<double>(a1 - a0) / atomic_iters;

    double const modeled_sharded_8t =
        std::min(8.0 * 1e9 / t_sharded_ns, 1e9 / t_atomics_ns);
    double const modeled_baseline_8t = 1e9 / t_baseline_ns;
    std::printf("BENCH {\"bench\":\"micro_enqueue_contention_model\","
                "\"host_cpus\":%u,"
                "\"sharded_ns_per_op\":%.1f,"
                "\"global_mutex_ns_per_op\":%.1f,"
                "\"shared_exchange_ns_per_op\":%.1f,"
                "\"modeled_8t_spread_parcels_per_sec\":%.0f,"
                "\"modeled_8t_spread_speedup\":%.2f}\n",
        std::thread::hardware_concurrency(), t_sharded_ns, t_baseline_ns,
        t_atomics_ns, modeled_sharded_8t,
        modeled_baseline_8t > 0 ? modeled_sharded_8t / modeled_baseline_8t :
                                  0.0);
}

// ---- batched receive pipeline report -------------------------------------
//
// Drains pre-encoded frames through the real parcelhandler (budgeted
// multi-frame drain, lazy decode, chunked bulk spawn) and through a
// faithful emulation of the pre-batching receive path (one frame per
// progress call, full decode on the background worker, one scheduler.post
// per parcel, a fresh 3-closure invocation context per execution), at
// batch sizes 1/64/512 and 1/2/4 workers.
//
// Few-core hosts (CI containers often expose one) cannot show parallel
// speedup in the measured rows, so — as with the enqueue-contention
// report — a *recorded emulation* models the 2-worker batch-512 drain
// from same-run single-worker measurements:
//
//   legacy:  every per-parcel cost scales with workers (generous — in
//     reality the per-frame decode serializes on whichever worker popped
//     the frame, and per-parcel posts contend on the deque locks);
//   batched: the per-parcel work (chunk decode + execute) spreads across
//     workers; the only serial residue is the background boundary scan,
//     measured separately per parcel.
//
//   modeled_batched_2w = min(2 × rate_batched_1w, 1 / t_scan_per_parcel)
//   modeled_speedup    = modeled_batched_2w / (2 × rate_legacy_1w)

std::vector<coal::parcel::parcel> make_sink_parcels(std::size_t count)
{
    std::vector<coal::parcel::parcel> parcels;
    parcels.reserve(count);
    for (std::size_t i = 0; i != count; ++i)
    {
        coal::parcel::parcel p;
        p.source = 1;
        p.dest = 0;
        p.action = receive_sink_action::id();
        p.arguments =
            receive_sink_action::make_arguments(static_cast<int>(i));
        parcels.push_back(std::move(p));
    }
    return parcels;
}

/// Push `total/batch` frames of `batch` parcels at a parcelhandler over
/// loopback and wait for every parcel to execute; returns parcels/second.
double run_batched_receive(
    unsigned workers, std::size_t batch, std::size_t total)
{
    coal::net::loopback_transport transport(16);
    coal::threading::scheduler_config cfg;
    cfg.num_workers = workers;
    coal::threading::scheduler sched(cfg);
    coal::parcel::parcelhandler handler(0, transport, sched);

    auto const flat =
        coal::parcel::encode_message(make_sink_parcels(batch)).flatten_copy();
    std::size_t const frames = total / batch;
    std::uint64_t const expected =
        g_receive_executed.load(std::memory_order_relaxed) + frames * batch;

    std::int64_t const t0 = coal::now_ns();
    for (std::size_t i = 0; i != frames; ++i)
    {
        transport.send(1, 0, coal::serialization::wire_message(
                                 coal::serialization::shared_buffer(flat)));
    }
    while (g_receive_executed.load(std::memory_order_acquire) < expected)
        std::this_thread::yield();
    std::int64_t const t1 = coal::now_ns();
    sched.stop();
    return static_cast<double>(frames * batch) * 1e9 /
        static_cast<double>(t1 - t0);
}

/// Same traffic through the pre-batching receive path.
double run_legacy_receive(
    unsigned workers, std::size_t batch, std::size_t total)
{
    coal::threading::scheduler_config cfg;
    cfg.num_workers = workers;
    coal::threading::scheduler sched(cfg);
    coal::mpmc_queue<coal::serialization::shared_buffer> inbox;

    sched.register_background_work([&sched, &inbox] {
        auto msg = inbox.try_pop();
        if (!msg)
            return false;
        // Full decode on the background worker, then one task per parcel.
        auto parcels = coal::parcel::decode_message(*msg);
        for (auto& p : parcels)
        {
            sched.post([parcel = std::move(p)]() mutable {
                // Fresh per-parcel invocation context, as the old
                // execute_parcel built.
                coal::parcel::invocation_context ctx;
                ctx.this_locality = 0;
                ctx.put_parcel = [](coal::parcel::parcel&&) {};
                ctx.complete_promise =
                    [](coal::parcel::continuation_id,
                        coal::serialization::shared_buffer&&) {};
                auto const* entry =
                    coal::parcel::action_registry::instance().find(
                        parcel.action);
                entry->invoke(ctx, std::move(parcel));
            });
        }
        return true;
    });

    auto const flat =
        coal::parcel::encode_message(make_sink_parcels(batch)).flatten_copy();
    std::size_t const frames = total / batch;
    std::uint64_t const expected =
        g_receive_executed.load(std::memory_order_relaxed) + frames * batch;

    std::int64_t const t0 = coal::now_ns();
    for (std::size_t i = 0; i != frames; ++i)
        inbox.push(coal::serialization::shared_buffer(flat));
    while (g_receive_executed.load(std::memory_order_acquire) < expected)
        std::this_thread::yield();
    std::int64_t const t1 = coal::now_ns();
    sched.stop();
    return static_cast<double>(frames * batch) * 1e9 /
        static_cast<double>(t1 - t0);
}

void report_receive_pipeline()
{
    constexpr std::size_t total = 49152;    // divisible by 1, 64 and 512

    for (unsigned workers : {1u, 2u, 4u})
    {
        for (std::size_t batch : {std::size_t(1), std::size_t(64),
                 std::size_t(512)})
        {
            double const batched = run_batched_receive(workers, batch, total);
            double const legacy = run_legacy_receive(workers, batch, total);
            std::printf("BENCH {\"bench\":\"micro_receive_pipeline\","
                        "\"workers\":%u,\"batch\":%zu,"
                        "\"batched_parcels_per_sec\":%.0f,"
                        "\"legacy_parcels_per_sec\":%.0f,"
                        "\"speedup\":%.2f}\n",
                workers, batch, batched, legacy,
                legacy > 0 ? batched / legacy : 0.0);
        }
    }

    // Recorded emulation of the 2-worker batch-512 drain from
    // single-worker measurements (see the comment block above).
    auto best_of3 = [](auto&& run) {
        double best = 0.0;
        for (int i = 0; i != 3; ++i)
            best = std::max(best, run());
        return best;
    };
    double const batched_1w =
        best_of3([&] { return run_batched_receive(1, 512, total); });
    double const legacy_1w =
        best_of3([&] { return run_legacy_receive(1, 512, total); });

    // Serial residue of the batched path: the per-parcel share of the
    // background boundary scan.
    auto const frame =
        coal::parcel::encode_message(make_sink_parcels(512)).flatten_copy();
    constexpr int scan_iters = 2000;
    std::int64_t const s0 = coal::now_ns();
    for (int i = 0; i != scan_iters; ++i)
    {
        auto offsets = coal::parcel::scan_parcel_offsets(frame, 512, 128);
        benchmark::DoNotOptimize(offsets.data());
    }
    std::int64_t const s1 = coal::now_ns();
    double const t_scan_pp =
        static_cast<double>(s1 - s0) / (scan_iters * 512.0);

    double const modeled_batched_2w =
        std::min(2.0 * batched_1w, 1e9 / t_scan_pp);
    double const modeled_legacy_2w = 2.0 * legacy_1w;
    std::printf("BENCH {\"bench\":\"micro_receive_pipeline_model\","
                "\"host_cpus\":%u,\"batch\":512,"
                "\"batched_1w_parcels_per_sec\":%.0f,"
                "\"legacy_1w_parcels_per_sec\":%.0f,"
                "\"scan_ns_per_parcel\":%.2f,"
                "\"modeled_2w_batched_parcels_per_sec\":%.0f,"
                "\"modeled_2w_speedup\":%.2f}\n",
        std::thread::hardware_concurrency(), batched_1w, legacy_1w, t_scan_pp,
        modeled_batched_2w,
        modeled_legacy_2w > 0 ? modeled_batched_2w / modeled_legacy_2w : 0.0);
}

// ---- timer wheel churn report --------------------------------------------

void report_timer_churn()
{
    for (unsigned threads : {1u, 4u})
    {
        coal::timing::deadline_timer_service timers;
        constexpr std::size_t per_thread = 50000;
        std::atomic<bool> start{false};
        std::vector<std::thread> workers;
        for (unsigned t = 0; t != threads; ++t)
        {
            workers.emplace_back([&] {
                while (!start.load(std::memory_order_acquire))
                    coal::cpu_relax();
                for (std::size_t i = 0; i != per_thread; ++i)
                {
                    auto id = timers.schedule_after(1000000, [] {});
                    timers.cancel(id);
                }
            });
        }
        std::int64_t const t0 = coal::now_ns();
        start.store(true, std::memory_order_release);
        for (auto& w : workers)
            w.join();
        std::int64_t const t1 = coal::now_ns();
        double const pairs_per_sec =
            static_cast<double>(threads * per_thread) * 1e9 /
            static_cast<double>(t1 - t0);
        std::printf("BENCH {\"bench\":\"micro_timer_churn\",\"threads\":%u,"
                    "\"schedule_cancel_pairs_per_sec\":%.0f}\n",
            threads, pairs_per_sec);
    }

    // Fire throughput + accuracy under a bursty load: 20k timers spread
    // over 50ms of deadlines, all landing in the wheel's level 0.
    {
        coal::timing::deadline_timer_service timers;
        constexpr std::size_t count = 20000;
        std::atomic<std::size_t> fired{0};
        std::int64_t const t0 = coal::now_ns();
        for (std::size_t i = 0; i != count; ++i)
        {
            timers.schedule_after(1000 + static_cast<std::int64_t>(i % 50000),
                [&] { fired.fetch_add(1, std::memory_order_relaxed); });
        }
        while (fired.load(std::memory_order_acquire) != count)
            std::this_thread::yield();
        std::int64_t const t1 = coal::now_ns();
        auto const stats = timers.stats();
        std::printf("BENCH {\"bench\":\"micro_timer_fire\",\"timers\":%zu,"
                    "\"fires_per_sec\":%.0f,\"mean_lateness_us\":%.1f,"
                    "\"max_lateness_us\":%.1f}\n",
            count,
            static_cast<double>(count) * 1e9 / static_cast<double>(t1 - t0),
            stats.mean_lateness_us, stats.max_lateness_us);
    }
}

// --- peer-state lookup under contention ------------------------------------
//
// The hot-path operation every send/ack performs: resolve a peer id to
// its protocol state and mutate one field under the narrowest possible
// lock.  Baseline is the pre-sharding design — one unordered_map behind
// one global spinlock — against the sharded store's lock-free snapshot
// lookup + per-peer lock.  Uniform random ids across 4096 peers: the
// baseline serializes every thread on one cacheline, the sharded store
// only collides two threads when they hit the same peer.

void report_peer_lookup_contention()
{
    constexpr std::uint32_t npeers = 4096;
    constexpr std::size_t per_thread = 400000;

    coal::parcel::peer_store store;
    for (std::uint32_t i = 0; i != npeers; ++i)
    {
        auto& e = store.get_or_create(i);
        std::lock_guard lock(e.lock);
        store.hydrate(e, 1);
    }
    for (std::size_t s = 0; s != coal::parcel::peer_store::shard_count; ++s)
        store.refresh_snapshot(s);

    coal::spinlock map_lock;
    std::unordered_map<std::uint32_t,
        std::unique_ptr<coal::parcel::peer_state>>
        map;
    for (std::uint32_t i = 0; i != npeers; ++i)
        map.emplace(i, std::make_unique<coal::parcel::peer_state>());

    auto run_threads = [&](unsigned threads, auto&& body) {
        std::atomic<bool> go{false};
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (unsigned t = 0; t != threads; ++t)
        {
            workers.emplace_back([&, t] {
                while (!go.load(std::memory_order_acquire))
                    coal::cpu_relax();
                std::uint64_t rng = 0x9e3779b9u * (t + 1);
                for (std::size_t i = 0; i != per_thread; ++i)
                {
                    rng += 0x9e3779b97f4a7c15ull;
                    std::uint64_t x = rng;
                    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
                    body(static_cast<std::uint32_t>(x) & (npeers - 1));
                }
            });
        }
        std::int64_t const t0 = coal::now_ns();
        go.store(true, std::memory_order_release);
        for (auto& w : workers)
            w.join();
        std::int64_t const t1 = coal::now_ns();
        return static_cast<double>(per_thread) * threads * 1e9 /
            static_cast<double>(t1 - t0);
    };

    for (unsigned threads : {1u, 2u, 4u, 8u})
    {
        double const sharded = run_threads(threads, [&](std::uint32_t id) {
            coal::parcel::peer_entry* e = store.find(id);
            std::lock_guard lock(e->lock);
            benchmark::DoNotOptimize(e->live->next_seq++);
        });
        double const baseline = run_threads(threads, [&](std::uint32_t id) {
            std::lock_guard lock(map_lock);
            auto const it = map.find(id);
            benchmark::DoNotOptimize(it->second->next_seq++);
        });
        std::printf("BENCH {\"bench\":\"micro_peer_lookup\",\"threads\":%u,"
                    "\"peers\":%u,\"sharded_lookups_per_sec\":%.0f,"
                    "\"global_lock_lookups_per_sec\":%.0f,"
                    "\"speedup\":%.2f}\n",
            threads, npeers, sharded, baseline,
            baseline > 0 ? sharded / baseline : 0.0);
    }

    // Recorded emulation of multi-core behaviour from single-thread
    // timings (same technique as micro_enqueue_contention: the threaded
    // rows above only show real scaling on a host with real cores).
    // Under the global lock the WHOLE operation is the critical section
    // — total throughput is capped at one op per t_baseline regardless
    // of thread count (generously ignoring the contention collapse a
    // bouncing lock cacheline adds on real hardware).  The sharded
    // lookup has no shared mutable state at all on the hit path — the
    // snapshot is read-only and the per-peer lock collides with
    // probability ~T/peers — so it scales with the thread count until
    // two threads pick the same peer.
    auto best_of3 = [](auto&& run) {
        double best = 0.0;
        for (int i = 0; i != 3; ++i)
            best = std::max(best, run());
        return best;
    };
    double const t_sharded_ns = 1e9 /
        best_of3([&] {
            return run_threads(1, [&](std::uint32_t id) {
                coal::parcel::peer_entry* e = store.find(id);
                std::lock_guard lock(e->lock);
                benchmark::DoNotOptimize(e->live->next_seq++);
            });
        });
    double const t_baseline_ns = 1e9 /
        best_of3([&] {
            return run_threads(1, [&](std::uint32_t id) {
                std::lock_guard lock(map_lock);
                auto const it = map.find(id);
                benchmark::DoNotOptimize(it->second->next_seq++);
            });
        });
    double const crossover =
        t_baseline_ns > 0 ? t_sharded_ns / t_baseline_ns : 0.0;
    for (unsigned threads : {8u, 16u, 32u, 64u})
    {
        double const modeled_sharded = threads * 1e9 / t_sharded_ns;
        double const modeled_baseline = 1e9 / t_baseline_ns;
        std::printf("BENCH {\"bench\":\"micro_peer_lookup_model\","
                    "\"host_cpus\":%u,\"threads\":%u,"
                    "\"sharded_ns_per_op\":%.1f,"
                    "\"global_lock_ns_per_op\":%.1f,"
                    "\"modeled_sharded_lookups_per_sec\":%.0f,"
                    "\"modeled_global_lock_lookups_per_sec\":%.0f,"
                    "\"modeled_speedup\":%.2f,"
                    "\"crossover_threads\":%.1f}\n",
            std::thread::hardware_concurrency(), threads, t_sharded_ns,
            t_baseline_ns, modeled_sharded, modeled_baseline,
            modeled_sharded / modeled_baseline, crossover);
    }
}

// ---- wire transport RTT / throughput --------------------------------------
//
// One-way latency (half a ping-pong round trip) and bulk throughput over
// the real socket parcelport — UDS and TCP through the kernel's loopback
// stack — next to the simulated transport's numbers, so the BENCH stream
// records what the real wire costs relative to the model the experiments
// run on.

double wire_rtt_us(coal::net::transport& net, int rounds)
{
    std::atomic<int> pongs{0};
    net.set_delivery_handler(
        1, [&net](std::uint32_t, coal::serialization::shared_buffer&&) {
            net.send(1, 0,
                coal::serialization::wire_message(
                    coal::serialization::shared_buffer(std::size_t(8))));
        });
    net.set_delivery_handler(0,
        [&pongs](std::uint32_t, coal::serialization::shared_buffer&&) {
            pongs.fetch_add(1, std::memory_order_release);
        });

    auto ping = [&net] {
        net.send(0, 1,
            coal::serialization::wire_message(
                coal::serialization::shared_buffer(std::size_t(8))));
    };

    // Warm-up establishes connections.
    ping();
    while (pongs.load(std::memory_order_acquire) != 1)
        std::this_thread::yield();

    std::int64_t const t0 = coal::now_ns();
    for (int i = 0; i != rounds; ++i)
    {
        int const seen = pongs.load(std::memory_order_acquire);
        ping();
        while (pongs.load(std::memory_order_acquire) == seen)
            std::this_thread::yield();
    }
    std::int64_t const t1 = coal::now_ns();
    return static_cast<double>(t1 - t0) / (1000.0 * rounds);
}

double wire_throughput_mb_s(
    coal::net::transport& net, std::size_t frames, std::size_t bytes)
{
    std::atomic<std::size_t> got{0};
    net.set_delivery_handler(0,
        [](std::uint32_t, coal::serialization::shared_buffer&&) {});
    net.set_delivery_handler(
        1, [&got](std::uint32_t, coal::serialization::shared_buffer&& buf) {
            got.fetch_add(buf.size(), std::memory_order_release);
        });

    coal::serialization::shared_buffer payload(bytes);
    std::memset(payload.mutable_data(), 0x5a, bytes);

    std::int64_t const t0 = coal::now_ns();
    for (std::size_t i = 0; i != frames; ++i)
        net.send(0, 1,
            coal::serialization::wire_message(
                coal::serialization::shared_buffer(payload)));
    while (got.load(std::memory_order_acquire) != frames * bytes)
        std::this_thread::yield();
    std::int64_t const t1 = coal::now_ns();
    return static_cast<double>(frames * bytes) * 1e3 /
        static_cast<double>(t1 - t0);
}

void report_wire_transport()
{
    constexpr int rtt_rounds = 2000;
    constexpr std::size_t tp_frames = 4000;
    constexpr std::size_t tp_bytes = 64 * 1024;

    auto report = [&](char const* name, auto&& make) {
        double rtt = 0.0, tput = 0.0;
        {
            auto net = make();
            rtt = wire_rtt_us(*net, rtt_rounds);
            net->drain();
            net->shutdown();
        }
        {
            auto net = make();
            tput = wire_throughput_mb_s(*net, tp_frames, tp_bytes);
            net->drain();
            net->shutdown();
        }
        std::printf("BENCH {\"bench\":\"micro_wire_transport\","
                    "\"wire\":\"%s\",\"rtt_us\":%.2f,"
                    "\"frame_bytes\":%zu,\"throughput_mb_s\":%.1f}\n",
            name, rtt, tp_bytes, tput);
    };

    report("sim", [] {
        coal::net::cost_model model;
        return std::make_unique<coal::net::sim_network>(2, model);
    });
    report("uds", [] {
        coal::net::socket_params p;
        p.kind = coal::net::socket_params::family::uds;
        return std::make_unique<coal::net::socket_transport>(p, 2);
    });
    report("tcp", [] {
        coal::net::socket_params p;
        p.kind = coal::net::socket_params::family::tcp;
        return std::make_unique<coal::net::socket_transport>(p, 2);
    });
}

}    // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report_zero_copy_pipeline();
    report_enqueue_contention();
    report_receive_pipeline();
    report_timer_churn();
    report_peer_lookup_contention();
    report_wire_transport();
    return 0;
}
