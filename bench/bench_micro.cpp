/// \file bench_micro.cpp
/// google-benchmark microbenchmarks for the substrate the experiments
/// stand on: serialization, message framing, scheduler dispatch, future
/// round trips, counter queries, histogram updates and timer churn.

#include <coal/common/histogram.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/perf/registry.hpp>
#include <coal/serialization/archive.hpp>
#include <coal/threading/future.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <benchmark/benchmark.h>

#include <complex>

namespace {

using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::serialization::to_bytes;

int micro_noop(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(micro_noop, micro_noop_action);

namespace {

void BM_SerializeComplexVector(benchmark::State& state)
{
    std::vector<std::complex<double>> const payload(
        static_cast<std::size_t>(state.range(0)),
        std::complex<double>(1.5, -0.5));
    for (auto _ : state)
    {
        auto buf = to_bytes(payload);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_SerializeComplexVector)->Arg(1)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeserializeComplexVector(benchmark::State& state)
{
    auto const buf = to_bytes(std::vector<std::complex<double>>(
        static_cast<std::size_t>(state.range(0)),
        std::complex<double>(1.5, -0.5)));
    for (auto _ : state)
    {
        auto v = from_bytes<std::vector<std::complex<double>>>(buf);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_DeserializeComplexVector)->Arg(64)->Arg(4096);

void BM_EncodeMessageFrame(benchmark::State& state)
{
    std::vector<coal::parcel::parcel> batch;
    for (int i = 0; i != state.range(0); ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1;
        p.action = micro_noop_action::id();
        p.arguments = micro_noop_action::make_arguments(i);
        batch.push_back(std::move(p));
    }
    for (auto _ : state)
    {
        auto wire = coal::parcel::encode_message(batch);
        benchmark::DoNotOptimize(wire.data());
    }
}
BENCHMARK(BM_EncodeMessageFrame)->Arg(1)->Arg(16)->Arg(128);

void BM_DecodeMessageFrame(benchmark::State& state)
{
    std::vector<coal::parcel::parcel> batch;
    for (int i = 0; i != state.range(0); ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1;
        p.action = micro_noop_action::id();
        p.arguments = micro_noop_action::make_arguments(i);
        batch.push_back(std::move(p));
    }
    auto const wire = coal::parcel::encode_message(batch);
    for (auto _ : state)
    {
        auto parcels = coal::parcel::decode_message(wire);
        benchmark::DoNotOptimize(parcels.data());
    }
}
BENCHMARK(BM_DecodeMessageFrame)->Arg(1)->Arg(16)->Arg(128);

void BM_SchedulerPostExecute(benchmark::State& state)
{
    coal::threading::scheduler_config cfg;
    cfg.num_workers = 1;
    coal::threading::scheduler sched(cfg);
    std::atomic<std::int64_t> sink{0};
    for (auto _ : state)
    {
        for (int i = 0; i != 256; ++i)
            sched.post([&sink] { sink.fetch_add(1); });
        sched.wait_idle();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SchedulerPostExecute);

void BM_FutureRoundTrip(benchmark::State& state)
{
    for (auto _ : state)
    {
        coal::threading::promise<int> p;
        auto f = p.get_future();
        p.set_value(1);
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_FutureRoundTrip);

void BM_HistogramAdd(benchmark::State& state)
{
    coal::concurrent_histogram h({0, 100000, 20});
    std::int64_t v = 0;
    for (auto _ : state)
    {
        h.add(v);
        v = (v + 997) % 120000;
    }
    benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_CounterQuery(benchmark::State& state)
{
    coal::perf::counter_registry reg;
    double value = 1.0;
    reg.register_counter_type("/bench/value", "",
        [&value](coal::perf::counter_path const&) {
            return std::make_shared<coal::perf::function_counter>(
                [&value] { return value; });
        });
    for (auto _ : state)
    {
        auto v = reg.query("/bench{locality#0}/value@param");
        benchmark::DoNotOptimize(v.value);
    }
}
BENCHMARK(BM_CounterQuery);

void BM_TimerScheduleCancel(benchmark::State& state)
{
    coal::timing::deadline_timer_service timers;
    for (auto _ : state)
    {
        auto id = timers.schedule_after(1000000, [] {});
        timers.cancel(id);
    }
}
BENCHMARK(BM_TimerScheduleCancel);

void BM_SpinlockUncontended(benchmark::State& state)
{
    coal::spinlock lock;
    for (auto _ : state)
    {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_SpinlockUncontended);

}    // namespace

BENCHMARK_MAIN();
