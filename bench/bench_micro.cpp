/// \file bench_micro.cpp
/// google-benchmark microbenchmarks for the substrate the experiments
/// stand on: serialization, message framing, scheduler dispatch, future
/// round trips, counter queries, histogram updates and timer churn.

#include <coal/apps/toy_app.hpp>
#include <coal/common/histogram.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/perf/registry.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/serialization/archive.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/threading/future.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <cstdio>

namespace {

using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::serialization::to_bytes;

int micro_noop(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(micro_noop, micro_noop_action);

namespace {

void BM_SerializeComplexVector(benchmark::State& state)
{
    std::vector<std::complex<double>> const payload(
        static_cast<std::size_t>(state.range(0)),
        std::complex<double>(1.5, -0.5));
    for (auto _ : state)
    {
        auto buf = to_bytes(payload);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_SerializeComplexVector)->Arg(1)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeserializeComplexVector(benchmark::State& state)
{
    auto const buf = to_bytes(std::vector<std::complex<double>>(
        static_cast<std::size_t>(state.range(0)),
        std::complex<double>(1.5, -0.5)));
    for (auto _ : state)
    {
        auto v = from_bytes<std::vector<std::complex<double>>>(buf);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 16);
}
BENCHMARK(BM_DeserializeComplexVector)->Arg(64)->Arg(4096);

void BM_EncodeMessageFrame(benchmark::State& state)
{
    std::vector<coal::parcel::parcel> batch;
    for (int i = 0; i != state.range(0); ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1;
        p.action = micro_noop_action::id();
        p.arguments = micro_noop_action::make_arguments(i);
        batch.push_back(std::move(p));
    }
    for (auto _ : state)
    {
        auto wire = coal::parcel::encode_message(batch);
        benchmark::DoNotOptimize(wire.size());
    }
}
BENCHMARK(BM_EncodeMessageFrame)->Arg(1)->Arg(16)->Arg(128);

void BM_DecodeMessageFrame(benchmark::State& state)
{
    std::vector<coal::parcel::parcel> batch;
    for (int i = 0; i != state.range(0); ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1;
        p.action = micro_noop_action::id();
        p.arguments = micro_noop_action::make_arguments(i);
        batch.push_back(std::move(p));
    }
    auto const wire = coal::parcel::encode_message(batch);
    for (auto _ : state)
    {
        auto parcels = coal::parcel::decode_message(wire);
        benchmark::DoNotOptimize(parcels.data());
    }
}
BENCHMARK(BM_DecodeMessageFrame)->Arg(1)->Arg(16)->Arg(128);

void BM_SchedulerPostExecute(benchmark::State& state)
{
    coal::threading::scheduler_config cfg;
    cfg.num_workers = 1;
    coal::threading::scheduler sched(cfg);
    std::atomic<std::int64_t> sink{0};
    for (auto _ : state)
    {
        for (int i = 0; i != 256; ++i)
            sched.post([&sink] { sink.fetch_add(1); });
        sched.wait_idle();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SchedulerPostExecute);

void BM_FutureRoundTrip(benchmark::State& state)
{
    for (auto _ : state)
    {
        coal::threading::promise<int> p;
        auto f = p.get_future();
        p.set_value(1);
        benchmark::DoNotOptimize(f.get());
    }
}
BENCHMARK(BM_FutureRoundTrip);

void BM_HistogramAdd(benchmark::State& state)
{
    coal::concurrent_histogram h({0, 100000, 20});
    std::int64_t v = 0;
    for (auto _ : state)
    {
        h.add(v);
        v = (v + 997) % 120000;
    }
    benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_CounterQuery(benchmark::State& state)
{
    coal::perf::counter_registry reg;
    double value = 1.0;
    reg.register_counter_type("/bench/value", "",
        [&value](coal::perf::counter_path const&) {
            return std::make_shared<coal::perf::function_counter>(
                [&value] { return value; });
        });
    for (auto _ : state)
    {
        auto v = reg.query("/bench{locality#0}/value@param");
        benchmark::DoNotOptimize(v.value);
    }
}
BENCHMARK(BM_CounterQuery);

void BM_TimerScheduleCancel(benchmark::State& state)
{
    coal::timing::deadline_timer_service timers;
    for (auto _ : state)
    {
        auto id = timers.schedule_after(1000000, [] {});
        timers.cancel(id);
    }
}
BENCHMARK(BM_TimerScheduleCancel);

void BM_SpinlockUncontended(benchmark::State& state)
{
    coal::spinlock lock;
    for (auto _ : state)
    {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_SpinlockUncontended);

// ---- zero-copy pipeline report ------------------------------------------
//
// Runs the coalesced toy-app path against the live buffer pool and reports
// measured bytes-copied-per-parcel, comparing against an emulation of the
// pre-pool pipeline (serialize into a growing vector frame, copy argument
// images in on encode and out on decode).  Emitted as a BENCH line so the
// driver can track the copy reduction across commits.

void report_zero_copy_pipeline()
{
    using coal::serialization::buffer_pool;

    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    coal::runtime rt(cfg);

    coal::apps::toy_params params;
    params.parcels_per_phase = 20000;
    params.phases = 2;
    params.enable_coalescing = true;
    params.coalescing = {64, 4000};

    // Warm-up: populate the pool free lists and code paths.
    (void) coal::apps::run_toy_app(rt, params);
    rt.quiesce();

    auto& counters = rt.counters();
    auto const before = buffer_pool::global().stats();
    double const parcels0 = counters.query("/parcels/count/sent").value;
    double const messages0 = counters.query("/messages/count/sent").value;

    (void) coal::apps::run_toy_app(rt, params);
    rt.quiesce();

    auto const after = buffer_pool::global().stats();
    double const parcels =
        counters.query("/parcels/count/sent").value - parcels0;
    double const messages =
        counters.query("/messages/count/sent").value - messages0;
    rt.stop();

    double const copied = static_cast<double>(
        (after.bytes_copied - before.bytes_copied) +
        (after.bytes_flattened - before.bytes_flattened));
    double const referenced =
        static_cast<double>(after.bytes_referenced - before.bytes_referenced);
    double const hits = static_cast<double>(after.hits - before.hits);
    double const misses = static_cast<double>(after.misses - before.misses);

    // Decode borrows every argument image by reference, so the referenced
    // delta measures total argument bytes — the input to the legacy model.
    double const args_per_parcel = parcels > 0 ? referenced / parcels : 0.0;
    std::size_t const batch = static_cast<std::size_t>(
        messages > 0 ? parcels / messages + 0.5 : 1.0);

    // Legacy emulation: one coalesced frame in the pre-pool pipeline.
    // The frame vector doubles as it grows (re-copying its contents), each
    // argument image is memcpy'd in on encode and copied out on decode.
    auto legacy_frame_copies = [](std::size_t nparcels,
                                   std::size_t args) -> std::uint64_t {
        std::uint64_t copied_bytes = 0;
        std::size_t size = 0, cap = 0;
        auto append = [&](std::size_t n, bool payload) {
            if (size + n > cap)
            {
                copied_bytes += size;    // vector growth re-copy
                cap = std::max({cap * 2, size + n, std::size_t(128)});
            }
            if (payload)
                copied_bytes += n;    // memcpy of a serialized image
            size += n;
        };
        append(coal::parcel::frame_prefix_bytes, false);
        for (std::size_t i = 0; i != nparcels; ++i)
        {
            append(coal::parcel::parcel::header_bytes + 8, false);
            append(args, true);
        }
        copied_bytes +=
            static_cast<std::uint64_t>(nparcels) * args;    // decode copy-out
        return copied_bytes;
    };

    double const new_pp = parcels > 0 ? copied / parcels : 0.0;
    double const legacy_pp = batch > 0
        ? static_cast<double>(legacy_frame_copies(batch,
              static_cast<std::size_t>(args_per_parcel + 0.5))) /
            static_cast<double>(batch)
        : 0.0;

    std::printf("BENCH {\"bench\":\"micro_zero_copy\","
                "\"parcels\":%.0f,\"messages\":%.0f,"
                "\"bytes_copied_per_parcel\":%.2f,"
                "\"legacy_bytes_copied_per_parcel\":%.2f,"
                "\"copy_reduction\":%.2f,"
                "\"bytes_referenced_per_parcel\":%.2f,"
                "\"pool_hit_rate\":%.4f,"
                "\"allocs\":%.0f,\"allocs_per_parcel\":%.4f}\n",
        parcels, messages, new_pp, legacy_pp,
        new_pp > 0.0 ? legacy_pp / new_pp : 0.0, args_per_parcel,
        hits + misses > 0 ? hits / (hits + misses) : 0.0, misses,
        parcels > 0 ? misses / parcels : 0.0);
}

}    // namespace

int main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report_zero_copy_pipeline();
    return 0;
}
