/// \file bench_fig5_toy_phase_times.cpp
/// Reproduces Fig. 5: time to complete a phase of the toy application
/// for increasing numbers of parcels per message, wait time 4000 µs.
/// Paper shape: monotone decrease up to the largest value (128) —
/// the toy app has no dependencies, so more coalescing is always better.
///
///     ./bench_fig5_toy_phase_times [parcels=8000] [repeats=3]

#include "bench_common.hpp"

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cfg.get_int("parcels", 8000));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 3));

    coal::bench::print_header(
        "Fig. 5 — toy app phase completion time vs parcels per message",
        "wait time 4000 us; paper: monotone decrease up to nparcels=128");

    std::printf("%-10s %-16s %-12s %-14s\n", "nparcels", "phase time [ms]",
        "overhead", "msgs/phase");
    coal::bench::csv_sink csv(
        cfg, "nparcels,time_ms,overhead,messages_per_phase");

    double first = 0.0, last = 0.0;
    for (std::size_t n : {1, 2, 4, 8, 16, 32, 64, 128})
    {
        coal::apps::toy_params params;
        params.parcels_per_phase = parcels;
        params.phases = 3;
        params.coalescing = {n, 4000};

        auto const m = coal::bench::measure_toy(params, repeats);
        std::printf("%-10zu %-16.2f %-12.4f %-14.0f\n", n,
            m.mean_phase_s * 1e3, m.mean_overhead, m.mean_messages);
        csv.row("%zu,%.4f,%.6f,%.0f", n, m.mean_phase_s * 1e3,
            m.mean_overhead, m.mean_messages);
        if (n == 1)
            first = m.mean_phase_s;
        last = m.mean_phase_s;
    }

    std::printf("\nspeedup nparcels=1 -> 128: %.2fx  (paper shape: fastest "
                "at the largest value)\n",
        first / last);
    return 0;
}
