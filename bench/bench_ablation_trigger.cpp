/// \file bench_ablation_trigger.cpp
/// Ablation: parcel-COUNT trigger (this paper's design) vs buffer-SIZE
/// trigger (Active Pebbles / AM++ / Charm++, §I).  A size trigger is
/// emulated by setting nparcels to infinity and capping max_buffer_bytes
/// at k × the action's wire size, so both configurations flush after
/// ~k parcels; the comparison isolates the triggering rule under a
/// mixed-size workload where size-based batches drift.
///
///     ./bench_ablation_trigger [nc=24]

#include "bench_common.hpp"

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const nc = static_cast<std::uint32_t>(cli.get_int("nc", 24));

    coal::bench::print_header(
        "Ablation — count-based vs size-based coalescing trigger",
        "paper §I: prior systems trigger on buffer size; this design on "
        "parcel count");

    // Wire size of one parquet parcel: header + args tuple
    // (u32 + u64 + vector<complex>: 8B count + 16B·Nc).
    std::size_t const parcel_bytes = 24 + 8 + 4 + 8 + 8 + 16ull * nc;

    std::printf("%-8s %-22s %-22s\n", "k", "count trigger [ms]",
        "size trigger [ms]");

    for (std::size_t k : {2, 4, 8, 16})
    {
        coal::apps::parquet_params count_params;
        count_params.nc = nc;
        count_params.iterations = 2;
        count_params.coalescing = {k, 4000};

        coal::apps::parquet_params size_params = count_params;
        size_params.coalescing.nparcels = 1u << 20;
        size_params.coalescing.max_buffer_bytes = k * parcel_bytes;

        auto const count_m =
            coal::bench::measure_parquet(count_params, 4, 2);
        auto const size_m = coal::bench::measure_parquet(size_params, 4, 2);

        std::printf("%-8zu %-22.2f %-22.2f\n", k,
            count_m.mean_iteration_s * 1e3, size_m.mean_iteration_s * 1e3);
    }

    std::printf("\nexpected: comparable performance — the triggering rule "
                "matters less than the\nbatch size itself; count-based "
                "control is simply easier to reason about per action.\n");
    return 0;
}
