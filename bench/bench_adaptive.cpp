/// \file bench_adaptive.cpp
/// Extension bench (the paper's future work, §V/§VI): the adaptive
/// controller tunes nparcels online from the Eq. 4 overhead counter.
/// Compared against (a) the static sweep optimum (oracle) and (b) the
/// pathological static setting, and against the PICS reference point the
/// paper cites (Charm++ converged in 5 decisions on an all-to-all).
///
///     ./bench_adaptive [parcels=8000] [phases=10]

#include <coal/adaptive/adaptive_coalescer.hpp>
#include <coal/threading/future.hpp>

#include "bench_common.hpp"

#include <complex>
#include <vector>

namespace {

// One phase of toy traffic; returns the phase wall time.
double traffic_phase(coal::runtime& rt, std::size_t parcels)
{
    coal::stopwatch sw;
    rt.run_everywhere([parcels](coal::locality& here) {
        auto const other = here.find_remote_localities().front();
        std::vector<coal::threading::future<std::complex<double>>> vec;
        vec.reserve(parcels);
        for (std::size_t i = 0; i != parcels; ++i)
            vec.push_back(here.async<toy_get_cplx_action>(other));
        coal::threading::wait_all(vec);
    });
    return sw.elapsed_s();
}

double static_run(std::size_t nparcels, std::size_t parcels, unsigned phases)
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    coal::runtime rt(cfg);
    rt.enable_coalescing(
        coal::apps::toy_action_name(), {nparcels, 2000});

    traffic_phase(rt, parcels);    // warm-up
    double total = 0.0;
    for (unsigned p = 0; p != phases; ++p)
        total += traffic_phase(rt, parcels);
    rt.stop();
    return total / phases;
}

}    // namespace

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cli.get_int("parcels", 8000));
    auto const phases = static_cast<unsigned>(cli.get_int("phases", 10));

    coal::bench::print_header(
        "Adaptive tuning (extension) — controller vs static settings",
        "paper §V/§VI future work; PICS reference: 5 decisions");

    // Static baselines.
    double const worst = static_run(1, parcels, 4);
    double const oracle = static_run(128, parcels, 4);
    std::printf("static nparcels=1   : %8.2f ms/phase (pathological)\n",
        worst * 1e3);
    std::printf("static nparcels=128 : %8.2f ms/phase (oracle)\n\n",
        oracle * 1e3);

    // Adaptive run, starting pathological.
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    coal::runtime rt(cfg);
    rt.enable_coalescing(coal::apps::toy_action_name(), {1, 2000});

    coal::adaptive::tuner_config tuner_cfg;
    tuner_cfg.action_name = coal::apps::toy_action_name();
    tuner_cfg.max_nparcels = 256;
    tuner_cfg.min_parcels_per_sample = 100;
    coal::adaptive::adaptive_coalescer tuner(rt, tuner_cfg);

    std::printf("%-8s %-10s %-14s %-12s %-12s %s\n", "phase", "nparcels",
        "time [ms]", "overhead", "decisions", "state");

    traffic_phase(rt, parcels);    // warm-up
    tuner.tick();

    double post_convergence = 0.0;
    unsigned post_phases = 0;
    std::uint64_t decisions_at_convergence = 0;

    for (unsigned p = 0; p != phases; ++p)
    {
        std::size_t const before = tuner.current_nparcels();
        double const t = traffic_phase(rt, parcels);
        bool const was_converged = tuner.converged();
        tuner.tick();

        auto const history = tuner.history();
        double const overhead =
            history.empty() ? 0.0 : history.back().overhead;
        std::printf("%-8u %-10zu %-14.2f %-12.4f %-12llu %s\n", p, before,
            t * 1e3, overhead,
            static_cast<unsigned long long>(tuner.decisions()),
            tuner.converged() ? "converged" : "exploring");

        if (was_converged)
        {
            post_convergence += t;
            ++post_phases;
        }
        else if (tuner.converged())
        {
            decisions_at_convergence = tuner.decisions();
        }
    }

    std::printf("\nconverged after %llu decisions (PICS reference: 5); "
                "final nparcels=%zu\n",
        static_cast<unsigned long long>(decisions_at_convergence ?
                decisions_at_convergence :
                tuner.decisions()),
        tuner.current_nparcels());
    if (post_phases > 0)
    {
        double const steady = post_convergence / post_phases;
        std::printf("steady-state %.2f ms/phase: %.2fx better than "
                    "pathological, within %.2fx of the oracle\n",
            steady * 1e3, worst / steady, steady / oracle);
    }
    rt.stop();

    // Second pass: 2-D coordinate descent (nparcels, then wait time) —
    // the "broad set of messaging parameters" of the paper's §VI.
    std::printf("\n2-D coordinate descent (tune_interval=true):\n");
    coal::runtime rt2(cfg);
    rt2.enable_coalescing(coal::apps::toy_action_name(), {1, 2000});

    coal::adaptive::tuner_config cfg2 = tuner_cfg;
    cfg2.tune_interval = true;
    cfg2.min_interval_us = 500;
    cfg2.max_interval_us = 16000;
    coal::adaptive::adaptive_coalescer tuner2(rt2, cfg2);

    traffic_phase(rt2, parcels);
    tuner2.tick();
    for (unsigned p = 0; p != phases + 6 && !tuner2.converged(); ++p)
    {
        traffic_phase(rt2, parcels);
        tuner2.tick();
    }
    std::printf("converged at nparcels=%zu, interval=%lld us after %llu "
                "decisions\n",
        tuner2.current_nparcels(),
        static_cast<long long>(tuner2.current_interval_us()),
        static_cast<unsigned long long>(tuner2.decisions()));
    rt2.stop();
    return 0;
}
