/// \file bench_fig6_parquet_iterations.cpp
/// Reproduces Fig. 6: time to reach completion of successive iterations
/// of the parquet application for various numbers of parcels per message
/// (wait time 4000 µs).  Paper shape: clear improvement from 1 -> 2,
/// minimum at 4, degradation beyond (a U-shape), more pronounced in
/// later iterations because the effect is cumulative.
///
/// With `nodes>1 hier=1` the localities group into nodes and cross-node
/// coalesced traffic relays hierarchically — used to check the hierarchy
/// layer does not tax a real application's critical path.
///
///     ./bench_fig6_parquet_iterations [nc=24] [iterations=3] [repeats=3]
///                                     [nodes=1] [hier=0]

#include "bench_common.hpp"

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const nc = static_cast<std::uint32_t>(cfg.get_int("nc", 24));
    auto const iterations =
        static_cast<unsigned>(cfg.get_int("iterations", 3));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 3));
    auto const nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 1));
    bool const hier = cfg.get_int("hier", 0) != 0;

    coal::bench::print_header(
        "Fig. 6 — parquet: cumulative time per iteration vs parcels/message",
        "wait 4000 us, 4 localities; paper: minimum at nparcels=4 (U-shape)");
    if (nodes > 1)
        std::printf("topology: %u nodes, hierarchical routing %s\n\n", nodes,
            hier ? "on" : "off");

    coal::bench::csv_sink csv(
        cfg, "nparcels,iteration,cumulative_ms,mean_iter_ms");
    std::printf("%-10s", "nparcels");
    for (unsigned i = 0; i != iterations; ++i)
        std::printf(" iter%-2u cum [ms]", i + 1);
    std::printf("  mean iter [ms]\n");

    double best = 1e300, best_n = 0, at1 = 0;
    for (std::size_t n : {1, 2, 4, 8, 16, 32})
    {
        coal::apps::parquet_params params;
        params.nc = nc;
        params.iterations = iterations;
        params.coalescing = {n, 4000};

        auto const m =
            coal::bench::measure_parquet(params, 4, repeats, 1, nodes, hier);
        std::printf("%-10zu", n);
        unsigned iteration = 1;
        for (double cum : m.per_iteration_cumulative_s)
        {
            std::printf(" %-14.2f", cum * 1e3);
            csv.row("%zu,%u,%.4f,%.4f", n, iteration++, cum * 1e3,
                m.mean_iteration_s * 1e3);
        }
        std::printf("  %-14.2f\n", m.mean_iteration_s * 1e3);
        std::printf("BENCH {\"bench\":\"fig6_parquet\",\"nparcels\":%zu,"
                    "\"nodes\":%u,\"hier\":%d,\"mean_iter_ms\":%.3f}\n",
            n, nodes, hier ? 1 : 0, m.mean_iteration_s * 1e3);

        if (m.mean_iteration_s < best)
        {
            best = m.mean_iteration_s;
            best_n = static_cast<double>(n);
        }
        if (n == 1)
            at1 = m.mean_iteration_s;
    }

    std::printf("\nminimum at nparcels=%.0f (paper: 4); improvement over "
                "nparcels=1: %.2fx\n",
        best_n, at1 / best);
    return 0;
}
