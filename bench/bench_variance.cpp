/// \file bench_variance.cpp
/// Reproduces the §IV-C run-to-run variance claim: with fixed parameters
/// (4 parcels/message, 5000 µs wait) the relative standard deviation of
/// repeated parquet runs is below five percent on the paper's testbed
/// (100 runs).  We run a smaller number of repetitions suitable for a
/// laptop and report the same statistic.
///
///     ./bench_variance [nc=24] [runs=12]

#include "bench_common.hpp"

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const nc = static_cast<std::uint32_t>(cfg.get_int("nc", 24));
    auto const runs = static_cast<unsigned>(cfg.get_int("runs", 12));

    coal::bench::print_header(
        "§IV-C — run-to-run variance at fixed parameters (4, 5000 us)",
        "paper: relative standard deviation < 5% over 100 runs");

    coal::running_stats totals;
    std::printf("%-6s %-16s\n", "run", "iter time [ms]");
    for (unsigned r = 0; r != runs; ++r)
    {
        coal::apps::parquet_params params;
        params.nc = nc;
        params.iterations = 2;
        params.coalescing = {4, 5000};

        auto const m = coal::bench::measure_parquet(params, 4, 1);
        totals.add(m.mean_iteration_s * 1e3);
        std::printf("%-6u %-16.2f\n", r, m.mean_iteration_s * 1e3);
    }

    std::printf("\nmean %.2f ms, stddev %.2f ms, relative stddev %.1f%%   "
                "(paper: <5%% on dedicated nodes; expect more on a shared "
                "2-core box)\n",
        totals.mean(), totals.stddev(), totals.relative_stddev() * 100.0);
    return 0;
}
