/// \file bench_fig9_instantaneous.cpp
/// Reproduces Fig. 9: per-phase instantaneous network overhead when the
/// number of parcels to coalesce is changed BETWEEN phases of a single
/// run (wait 2000 µs).  Two runs:
///   run A starts optimal (128) and degrades: 128 -> 64 -> 32 -> 1;
///   run B starts pathological (1) and improves: 1 -> 32 -> 64 -> 128.
/// Paper: overhead tracks the parameter change within the run — the
/// signal an adaptive controller needs.
///
///     ./bench_fig9_instantaneous [parcels=8000]

#include "bench_common.hpp"

#include <vector>

namespace {

void run_schedule(char const* label, std::vector<std::size_t> schedule,
    std::size_t parcels)
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.apply_coalescing_defaults = false;
    coal::runtime rt(cfg);

    coal::apps::toy_params params;
    params.parcels_per_phase = parcels;
    params.phases = static_cast<unsigned>(schedule.size()) + 1;
    params.coalescing = {schedule.front(), 2000};
    // Warm-up phase runs with the first scheduled value.
    schedule.insert(schedule.begin(), schedule.front());
    params.nparcels_schedule = schedule;

    auto const result = coal::apps::run_toy_app(rt, params);

    std::printf("%s\n", label);
    std::printf("%-8s %-10s %-12s %-16s\n", "phase", "nparcels", "overhead",
        "phase time [ms]");
    for (std::size_t i = 1; i < result.phases.size(); ++i)
    {
        auto const& phase = result.phases[i];
        std::printf("%-8zu %-10zu %-12.4f %-16.2f\n", i - 1, phase.nparcels,
            phase.metrics.network_overhead,
            phase.metrics.duration_s * 1e3);
    }
    std::printf("\n");
    rt.stop();
}

}    // namespace

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cfg.get_int("parcels", 8000));

    coal::bench::print_header(
        "Fig. 9 — per-phase overhead under mid-run parameter changes",
        "wait 2000 us; paper: overhead rises/falls with the live setting");

    run_schedule("run A: optimal start, degrading (128 -> 64 -> 32 -> 1)",
        {128, 64, 32, 1}, parcels);
    run_schedule("run B: pathological start, improving (1 -> 32 -> 64 -> 128)",
        {1, 32, 64, 128}, parcels);

    std::printf("expected shape: run A's overhead increases phase over "
                "phase; run B's decreases.\n");
    return 0;
}
