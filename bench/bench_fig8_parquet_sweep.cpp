/// \file bench_fig8_parquet_sweep.cpp
/// Reproduces Fig. 8: average time per parquet iteration over the full
/// 2-D coalescing parameter space (parcels/message × wait time).
/// Paper shape: ridges of slow runs along nparcels=1 and interval=1 µs
/// (both effectively disable coalescing); best cell around
/// (nparcels=4, interval=5000 µs).
///
///     ./bench_fig8_parquet_sweep [nc=24] [iterations=2] [repeats=2]

#include "bench_common.hpp"

#include <vector>

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const nc = static_cast<std::uint32_t>(cfg.get_int("nc", 24));
    auto const iterations =
        static_cast<unsigned>(cfg.get_int("iterations", 2));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 3));

    std::vector<std::size_t> const nparcels{1, 2, 4, 8, 16, 32};
    std::vector<std::int64_t> const intervals{1, 1000, 2000, 4000, 5000,
        8000};

    coal::bench::print_header(
        "Fig. 8 — parquet: avg time per iteration over (nparcels x wait)",
        "paper: slow ridges at nparcels=1 and wait=1 us; best ~(4, 5000)");

    coal::bench::csv_sink csv(cfg, "nparcels,interval_us,iter_time_ms");
    std::printf("avg iteration time [ms]\n%-10s", "nparcels");
    for (auto interval : intervals)
        std::printf(" %8lldus", static_cast<long long>(interval));
    std::printf("\n");

    double best = 1e300;
    std::size_t best_n = 0;
    std::int64_t best_i = 0;
    double ridge_n1 = 0.0;
    unsigned ridge_cells = 0;

    for (auto n : nparcels)
    {
        std::printf("%-10zu", n);
        for (auto interval : intervals)
        {
            coal::apps::parquet_params params;
            params.nc = nc;
            params.iterations = iterations;
            params.coalescing = {n, interval};

            auto const m = coal::bench::measure_parquet(params, 4, repeats);
            std::printf(" %10.2f", m.mean_iteration_s * 1e3);
            csv.row("%zu,%lld,%.4f", n, static_cast<long long>(interval),
                m.mean_iteration_s * 1e3);

            if (m.mean_iteration_s < best)
            {
                best = m.mean_iteration_s;
                best_n = n;
                best_i = interval;
            }
            if (n == 1 || interval == 1)
            {
                ridge_n1 += m.mean_iteration_s;
                ++ridge_cells;
            }
        }
        std::printf("\n");
    }

    std::printf("\nbest cell: nparcels=%zu, wait=%lld us (%.2f ms)   "
                "(paper: 4, 5000 us)\n",
        best_n, static_cast<long long>(best_i), best * 1e3);
    std::printf("mean of disabled ridges (nparcels=1 or wait=1 us): %.2f ms "
                "-> %.2fx slower than best\n",
        ridge_n1 / ridge_cells * 1e3, (ridge_n1 / ridge_cells) / best);
    return 0;
}
