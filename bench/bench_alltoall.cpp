/// \file bench_alltoall.cpp
/// The all-to-all benchmark the paper's related work tunes on (PICS/TRAM,
/// §I and §V): every locality bursts many small chunks to every other
/// locality each round, with a round barrier.  Swept over nparcels, plus
/// an adaptive-controller run starting from the pathological setting —
/// the scenario in which Charm++'s PICS "converged to a decision on
/// coalescing buffer size in 5 decisions".
///
///     ./bench_alltoall [chunks=256] [doubles=16] [rounds=4]

#include <coal/adaptive/adaptive_coalescer.hpp>
#include <coal/collectives/collectives.hpp>

#include "bench_common.hpp"

namespace {

// One measured configuration: mean round time over `rounds` (after one
// warm-up round).
double measure(std::size_t nparcels, std::size_t chunks,
    std::size_t doubles, unsigned rounds,
    coal::adaptive::adaptive_coalescer* tuner = nullptr,
    coal::runtime* reuse_rt = nullptr)
{
    std::unique_ptr<coal::runtime> owned;
    coal::runtime* rt = reuse_rt;
    if (rt == nullptr)
    {
        coal::runtime_config cfg;
        cfg.num_localities = 4;
        cfg.apply_coalescing_defaults = false;
        owned = std::make_unique<coal::runtime>(cfg);
        rt = owned.get();
        rt->enable_coalescing(
            coal::collectives::deposit_action_name(), {nparcels, 4000});
    }

    coal::running_stats round_times;
    // Tag space: each round consumes `chunks` tags per (src,dst) pair.
    static std::atomic<std::uint64_t> tag_base{1u << 20};

    for (unsigned round = 0; round != rounds + 1; ++round)
    {
        std::uint64_t const tag =
            tag_base.fetch_add(chunks + 1, std::memory_order_relaxed);
        coal::stopwatch sw;
        rt->run_everywhere([&](coal::locality& here) {
            std::vector<std::vector<std::vector<double>>> payload(4);
            for (auto& per_dest : payload)
                per_dest.assign(chunks, std::vector<double>(doubles, 1.0));
            (void) coal::collectives::all_to_all_chunked(
                *rt, here, payload, tag);
        });
        if (round > 0)    // round 0 is warm-up
            round_times.add(sw.elapsed_s());
        if (tuner != nullptr)
            tuner->tick();
    }

    if (owned)
        owned->stop();
    return round_times.mean();
}

}    // namespace

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const chunks =
        static_cast<std::size_t>(cli.get_int("chunks", 256));
    auto const doubles =
        static_cast<std::size_t>(cli.get_int("doubles", 16));
    auto const rounds = static_cast<unsigned>(cli.get_int("rounds", 4));

    coal::bench::print_header(
        "All-to-all benchmark (PICS/TRAM reference workload)",
        "4 localities, per round each sends `chunks` x `doubles` to every "
        "peer");

    std::printf("%-10s %-18s\n", "nparcels", "round time [ms]");
    double worst = 0.0, best = 1e300;
    for (std::size_t n : {1, 4, 16, 64, 128})
    {
        double const t = measure(n, chunks, doubles, rounds);
        std::printf("%-10zu %-18.2f\n", n, t * 1e3);
        worst = std::max(worst, t);
        best = std::min(best, t);
    }
    std::printf("static sweep: best/worst = %.2fx\n\n", worst / best);

    // Adaptive run on a persistent runtime, one decision per round.
    coal::runtime_config cfg;
    cfg.num_localities = 4;
    cfg.apply_coalescing_defaults = false;
    coal::runtime rt(cfg);
    rt.enable_coalescing(
        coal::collectives::deposit_action_name(), {1, 4000});

    coal::adaptive::tuner_config tuner_cfg;
    tuner_cfg.action_name = coal::collectives::deposit_action_name();
    tuner_cfg.max_nparcels = 128;
    tuner_cfg.min_parcels_per_sample = 64;
    coal::adaptive::adaptive_coalescer tuner(rt, tuner_cfg);

    double const adaptive_time =
        measure(0, chunks, doubles, 3 * rounds, &tuner, &rt);
    std::printf("adaptive (from nparcels=1): mean round %.2f ms, %llu "
                "decisions, final nparcels=%zu\n",
        adaptive_time * 1e3,
        static_cast<unsigned long long>(tuner.decisions()),
        tuner.current_nparcels());
    std::printf("(PICS reference: converged in 5 decisions on this "
                "workload class)\n");
    rt.stop();
    return 0;
}
