/// \file bench_alltoall.cpp
/// The all-to-all benchmark the paper's related work tunes on (PICS/TRAM,
/// §I and §V): every locality bursts many small chunks to every other
/// locality each round, with a round barrier.  Swept over nparcels, plus
/// an adaptive-controller run starting from the pathological setting —
/// the scenario in which Charm++'s PICS "converged to a decision on
/// coalescing buffer size in 5 decisions".
///
/// With nodes > 1 the run also compares flat coalescing against
/// hierarchical (two-level) aggregation on the same topology: cross-node
/// traffic relayed through one locality per destination node and fanned
/// out over intra-node links, reported as inter-/intra-node message
/// counts from the simulated network's tier accounting.
///
///     ./bench_alltoall [localities=4] [nodes=1] [chunks=256] [doubles=16]
///                      [rounds=4]

#include <coal/adaptive/adaptive_coalescer.hpp>
#include <coal/collectives/collectives.hpp>
#include <coal/net/sim_network.hpp>

#include "bench_common.hpp"

#include <cinttypes>

namespace {

struct run_result
{
    double round_s = 0.0;
    // Simulated-network tier totals over the measured rounds (warm-up
    // excluded); with nodes <= 1 everything classifies as inter-node.
    std::uint64_t inter_messages = 0;
    std::uint64_t intra_messages = 0;
    std::uint64_t parcels_relayed = 0;
    std::uint64_t parcels_fanned_out = 0;
};

// One measured configuration: mean round time over `rounds` (after one
// warm-up round).
run_result measure(std::size_t nparcels, std::size_t chunks,
    std::size_t doubles, unsigned rounds, std::uint32_t localities,
    std::uint32_t nodes, bool hierarchical, bool staggered = true,
    coal::adaptive::adaptive_coalescer* tuner = nullptr,
    coal::runtime* reuse_rt = nullptr,
    coal::net::cost_model const* inter_model = nullptr)
{
    std::unique_ptr<coal::runtime> owned;
    coal::runtime* rt = reuse_rt;
    if (rt == nullptr)
    {
        coal::runtime_config cfg;
        cfg.num_localities = localities;
        cfg.num_nodes = nodes;
        cfg.hierarchical_routing = hierarchical;
        cfg.apply_coalescing_defaults = false;
        if (inter_model != nullptr)
            cfg.network = *inter_model;
        owned = std::make_unique<coal::runtime>(cfg);
        rt = owned.get();
        rt->enable_coalescing(
            coal::collectives::deposit_action_name(), {nparcels, 4000});
    }

    std::uint32_t const n = rt->num_localities();
    auto const* sim =
        dynamic_cast<coal::net::sim_network const*>(&rt->network());
    auto const relayed_counter = rt->counters().get("/coal/hierarchy/relayed");
    auto const fanned_counter =
        rt->counters().get("/coal/hierarchy/fanned-out");

    coal::running_stats round_times;
    // Tag space: each round consumes `chunks` tags per (src,dst) pair.
    static std::atomic<std::uint64_t> tag_base{1u << 20};

    coal::net::link_stats inter0, intra0;
    double relayed0 = 0.0, fanned0 = 0.0;

    for (unsigned round = 0; round != rounds + 1; ++round)
    {
        std::uint64_t const tag =
            tag_base.fetch_add(chunks + 1, std::memory_order_relaxed);
        coal::stopwatch sw;
        rt->run_everywhere([&](coal::locality& here) {
            std::vector<std::vector<std::vector<double>>> payload(n);
            for (auto& per_dest : payload)
                per_dest.assign(chunks, std::vector<double>(doubles, 1.0));
            (void) coal::collectives::all_to_all_chunked(
                *rt, here, payload, tag, staggered);
        });
        if (round == 0)
        {
            // Warm-up done: baseline the traffic accounting so the
            // reported tier totals cover exactly the measured rounds.
            if (sim != nullptr)
            {
                inter0 = sim->tier_totals(coal::net::link_tier::inter_node);
                intra0 = sim->tier_totals(coal::net::link_tier::intra_node);
            }
            if (relayed_counter)
                relayed0 = relayed_counter->value(false).value;
            if (fanned_counter)
                fanned0 = fanned_counter->value(false).value;
        }
        else
            round_times.add(sw.elapsed_s());
        if (tuner != nullptr)
            tuner->tick();
    }

    run_result out;
    out.round_s = round_times.mean();
    if (sim != nullptr)
    {
        out.inter_messages =
            sim->tier_totals(coal::net::link_tier::inter_node).messages -
            inter0.messages;
        out.intra_messages =
            sim->tier_totals(coal::net::link_tier::intra_node).messages -
            intra0.messages;
    }
    if (relayed_counter)
        out.parcels_relayed = static_cast<std::uint64_t>(
            relayed_counter->value(false).value - relayed0);
    if (fanned_counter)
        out.parcels_fanned_out = static_cast<std::uint64_t>(
            fanned_counter->value(false).value - fanned0);

    if (owned)
        owned->stop();
    return out;
}

// Inter-node tier defaults for the flat-vs-hierarchical comparison: a
// busy NIC/fabric path whose per-message cost dwarfs the shared-memory
// tier — the regime node-level aggregation is designed for.  The sim's
// stock defaults (2 us/message) price a quiet link where relaying could
// never pay; these approximate a loaded one (kernel bypass off, rendezvous
// handshakes, congestion).  Override with inter_send_us= / inter_recv_us=
// / inter_latency_us= on the command line.
constexpr double inter_send_default = 40.0;
constexpr double inter_recv_default = 40.0;
constexpr double inter_latency_default = 40.0;

}    // namespace

int main(int argc, char** argv)
{
    auto cli = coal::bench::parse_cli(argc, argv);
    auto const localities =
        static_cast<std::uint32_t>(cli.get_int("localities", 4));
    auto const nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 1));
    auto const chunks =
        static_cast<std::size_t>(cli.get_int("chunks", 256));
    auto const doubles =
        static_cast<std::size_t>(cli.get_int("doubles", 16));
    auto const rounds = static_cast<unsigned>(cli.get_int("rounds", 4));

    coal::bench::print_header(
        "All-to-all benchmark (PICS/TRAM reference workload)",
        "per round each locality sends `chunks` x `doubles` to every peer");
    std::printf("localities=%u nodes=%u chunks=%zu doubles=%zu rounds=%u\n\n",
        localities, nodes, chunks, doubles, rounds);

    std::printf("%-10s %-18s\n", "nparcels", "round time [ms]");
    double worst = 0.0, best = 1e300;
    for (std::size_t n : {1, 4, 16, 64, 128})
    {
        auto const r =
            measure(n, chunks, doubles, rounds, localities, nodes, false);
        std::printf("%-10zu %-18.2f\n", n, r.round_s * 1e3);
        worst = std::max(worst, r.round_s);
        best = std::min(best, r.round_s);
    }
    std::printf("static sweep: best/worst = %.2fx\n\n", worst / best);

    // Destination-order stagger A/B (ROADMAP 5a): identical traffic, only
    // the burst order differs.  The synchronized order flush-storms each
    // receiver in turn; the rotated order spreads them.
    {
        auto const sync = measure(
            64, chunks, doubles, rounds, localities, nodes, false, false);
        auto const stag = measure(
            64, chunks, doubles, rounds, localities, nodes, false, true);
        std::printf("burst order: synchronized %.2f ms -> staggered %.2f ms "
                    "(%.2fx)\n\n",
            sync.round_s * 1e3, stag.round_s * 1e3,
            stag.round_s > 0.0 ? sync.round_s / stag.round_s : 0.0);
        std::printf("BENCH {\"bench\":\"alltoall_stagger\",\"staggered\":0,"
                    "\"localities\":%u,\"round_ms\":%.3f}\n",
            localities, sync.round_s * 1e3);
        std::printf("BENCH {\"bench\":\"alltoall_stagger\",\"staggered\":1,"
                    "\"localities\":%u,\"round_ms\":%.3f}\n",
            localities, stag.round_s * 1e3);
    }

    // Flat vs hierarchical aggregation on the same topology.  Only
    // meaningful with a real node grouping.  Both arms run on the same
    // two-tier network, with the inter-node tier priced like the link the
    // hierarchy is for — a congested NIC/fabric path whose per-message
    // overhead dwarfs the shared-memory tier (overridable on the CLI).
    if (nodes > 1)
    {
        coal::net::cost_model inter;
        inter.send_overhead_us =
            cli.get_double("inter_send_us", inter_send_default);
        inter.recv_overhead_us =
            cli.get_double("inter_recv_us", inter_recv_default);
        inter.wire_latency_us =
            cli.get_double("inter_latency_us", inter_latency_default);
        std::printf("\ninter-node tier: send %.1f us, recv %.1f us, "
                    "latency %.1f us per message\n",
            inter.send_overhead_us, inter.recv_overhead_us,
            inter.wire_latency_us);
        auto const flat = measure(64, chunks, doubles, rounds, localities,
            nodes, false, true, nullptr, nullptr, &inter);
        auto const hier = measure(64, chunks, doubles, rounds, localities,
            nodes, true, true, nullptr, nullptr, &inter);
        double const msg_ratio = hier.inter_messages != 0 ?
            static_cast<double>(flat.inter_messages) /
                static_cast<double>(hier.inter_messages) :
            0.0;
        std::printf("\nhierarchical aggregation (%u localities / %u nodes, "
                    "nparcels=64):\n",
            localities, nodes);
        std::printf("  flat:         round %.2f ms, %" PRIu64
                    " inter-node msgs, %" PRIu64 " intra-node msgs\n",
            flat.round_s * 1e3, flat.inter_messages, flat.intra_messages);
        std::printf("  hierarchical: round %.2f ms, %" PRIu64
                    " inter-node msgs, %" PRIu64 " intra-node msgs, %" PRIu64
                    " relayed, %" PRIu64 " fanned out\n",
            hier.round_s * 1e3, hier.inter_messages, hier.intra_messages,
            hier.parcels_relayed, hier.parcels_fanned_out);
        std::printf("  inter-node message reduction: %.2fx\n\n", msg_ratio);
        std::printf("BENCH {\"bench\":\"alltoall_hierarchy\","
                    "\"hierarchical\":0,\"localities\":%u,\"nodes\":%u,"
                    "\"round_ms\":%.3f,\"inter_msgs\":%" PRIu64
                    ",\"intra_msgs\":%" PRIu64 "}\n",
            localities, nodes, flat.round_s * 1e3, flat.inter_messages,
            flat.intra_messages);
        std::printf("BENCH {\"bench\":\"alltoall_hierarchy\","
                    "\"hierarchical\":1,\"localities\":%u,\"nodes\":%u,"
                    "\"round_ms\":%.3f,\"inter_msgs\":%" PRIu64
                    ",\"intra_msgs\":%" PRIu64 ",\"relayed\":%" PRIu64
                    ",\"fanned_out\":%" PRIu64 "}\n",
            localities, nodes, hier.round_s * 1e3, hier.inter_messages,
            hier.intra_messages, hier.parcels_relayed,
            hier.parcels_fanned_out);
    }

    // Adaptive run on a persistent runtime, one decision per round.
    coal::runtime_config cfg;
    cfg.num_localities = localities;
    cfg.num_nodes = nodes;
    cfg.apply_coalescing_defaults = false;
    coal::runtime rt(cfg);
    rt.enable_coalescing(
        coal::collectives::deposit_action_name(), {1, 4000});

    coal::adaptive::tuner_config tuner_cfg;
    tuner_cfg.action_name = coal::collectives::deposit_action_name();
    tuner_cfg.max_nparcels = 128;
    tuner_cfg.min_parcels_per_sample = 64;
    coal::adaptive::adaptive_coalescer tuner(rt, tuner_cfg);

    auto const adaptive = measure(0, chunks, doubles, 3 * rounds, localities,
        nodes, false, true, &tuner, &rt);
    std::printf("\nadaptive (from nparcels=1): mean round %.2f ms, %llu "
                "decisions, final nparcels=%zu\n",
        adaptive.round_s * 1e3,
        static_cast<unsigned long long>(tuner.decisions()),
        tuner.current_nparcels());
    std::printf("(PICS reference: converged in 5 decisions on this "
                "workload class)\n");
    rt.stop();
    return 0;
}
