/// \file bench_churn.cpp
/// Peer-scale churn: one parcelhandler versus 100k peers.  A synthetic
/// ack-echo transport plays the entire remote population — every
/// sequenced frame is acknowledged inline from a per-peer cumulative
/// counter — so the handler under test runs its real send, reliability
/// and eviction machinery against peer counts no in-process harness of
/// actual parcelhandlers could host.
///
/// Per peer-count row (1k / 10k / 100k): a round-robin pass first
/// touches every peer (the store-growth path), then Zipf-distributed
/// traffic models the realistic skew where a hot minority stays resident
/// while the long tail goes idle and must be demoted by the sweeper.
/// Reported: p50/p99/max put_parcel latency (the sharded-lookup hot
/// path), end-to-end confirm throughput, resident-set growth per peer
/// before and after idle eviction, and the sweeper's eviction rate.
///
///     ./build/bench/bench_churn [peers=1000,10000,100000]
///         [traffic=4] [zipf_s=1.0] [evict_idle_ms=50]
///
/// Machine-readable rows:
///     BENCH {"bench":"churn","peers":...,"p99_put_us":...,
///            "confirm_pps":...,"rss_per_peer_b":...,
///            "rss_per_idle_peer_b":...,"evict_per_s":...}

#include "bench_common.hpp"

#include <coal/common/spinlock.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/net/transport.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/threading/scheduler.hpp>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace {

int churn_sink(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(churn_sink, churn_sink_action);

namespace {

using coal::stopwatch;
using coal::parcel::frame_header;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::peer_store_params;
using coal::parcel::reliability_params;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

/// Plays every remote peer at once: a sequenced frame to peer `d` bumps
/// d's cumulative-ack counter and is answered inline with a standalone
/// ack frame, so the sender's reliability state drains exactly as it
/// would against a live (and infinitely fast) population.  Control
/// frames (seq 0) are swallowed — the population never initiates.
class ack_echo_transport final : public coal::net::transport
{
public:
    explicit ack_echo_transport(std::uint32_t peers)
      : cum_(peers + 1)
    {
        for (auto& c : cum_)
            c.store(0, std::memory_order_relaxed);
    }

    void set_delivery_handler(
        std::uint32_t dst, delivery_handler handler) override
    {
        if (dst == 0)
            to_sender_ = std::move(handler);
    }

    void send(std::uint32_t src, std::uint32_t dst,
        coal::serialization::wire_message&& message) override
    {
        (void) src;
        sent_.fetch_add(1, std::memory_order_relaxed);
        auto flat = message.flatten_copy();
        auto const info = coal::parcel::peek_frame(flat);
        if (info.header.seq == 0 || dst >= cum_.size())
            return;    // heartbeat/ack toward the population: swallow
        // Cumulative ack: frames for one peer arrive in seq order on a
        // healthy link, but retransmit races make fetch-max the honest
        // reduction.
        auto& cum = cum_[dst];
        std::uint64_t seen = cum.load(std::memory_order_relaxed);
        while (seen < info.header.seq &&
            !cum.compare_exchange_weak(
                seen, info.header.seq, std::memory_order_relaxed))
        {
        }
        frame_header ack;
        ack.ack = cum.load(std::memory_order_relaxed);
        ack.src_epoch = info.header.dst_epoch;
        ack.dst_epoch = info.header.src_epoch;
        echoed_.fetch_add(1, std::memory_order_relaxed);
        to_sender_(dst,
            coal::parcel::encode_message({}, ack).flatten_copy());
    }

    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return 0.0;
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return 0;    // delivery is inline
    }

    void drain() override {}

    [[nodiscard]] coal::net::transport_stats stats() const override
    {
        coal::net::transport_stats s;
        s.messages_sent = sent_.load(std::memory_order_relaxed);
        s.messages_delivered = echoed_.load(std::memory_order_relaxed);
        return s;
    }

    void shutdown() override {}

private:
    delivery_handler to_sender_;
    std::vector<std::atomic<std::uint64_t>> cum_;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> echoed_{0};
};

std::uint64_t mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Zipf(s) sampler over [1, n] via inverse CDF on the precomputed
/// cumulative weights (binary search per draw).
class zipf_sampler
{
public:
    zipf_sampler(std::uint32_t n, double s)
      : cdf_(n)
    {
        double acc = 0.0;
        for (std::uint32_t k = 1; k <= n; ++k)
        {
            acc += 1.0 / std::pow(static_cast<double>(k), s);
            cdf_[k - 1] = acc;
        }
        total_ = acc;
    }

    [[nodiscard]] std::uint32_t operator()(std::uint64_t& state) const
    {
        state = mix(state);
        double const u = total_ *
            (static_cast<double>(state >> 11) * 0x1.0p-53);
        auto const it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<std::uint32_t>(it - cdf_.begin()) + 1;
    }

private:
    std::vector<double> cdf_;
    double total_ = 0.0;
};

/// Resident set size in bytes (/proc/self/statm; 0 where unsupported).
std::uint64_t rss_bytes()
{
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long long total = 0, resident = 0;
    int const n = std::fscanf(f, "%llu %llu", &total, &resident);
    std::fclose(f);
    if (n != 2)
        return 0;
    return resident * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

double percentile(std::vector<double>& v, double p)
{
    if (v.empty())
        return 0.0;
    auto const idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1));
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
        v.end());
    return v[idx];
}

void run_row(std::uint32_t peers, std::uint32_t traffic_mult, double zipf_s,
    std::int64_t evict_idle_ms, coal::bench::csv_sink& csv)
{
    std::uint64_t const rss_start = rss_bytes();

    ack_echo_transport transport(peers);
    scheduler_config cfg;
    cfg.num_workers = 2;
    cfg.idle_sleep_us = 20;
    scheduler sched(cfg);

    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 200;
    rel.min_rto_us = 50000;    // the echo acks instantly; RTO is noise
    rel.max_rto_us = 200000;

    peer_store_params store;
    store.evict_idle_us = evict_idle_ms * 1000;
    store.evict_scan_budget = 512;
    store.evict_scan_interval_us = 200;

    parcelhandler ph(0, transport, sched, rel, {}, {}, store);

    auto put_one = [&](std::uint32_t dst) {
        parcel p;
        p.dest = dst;
        p.action = churn_sink_action::id();
        p.arguments = churn_sink_action::make_arguments(7);
        ph.put_parcel(std::move(p));
    };

    // Phase 1 — population growth: one parcel to every peer, timing each
    // put (this is the get_or_create / snapshot-republish path).
    std::vector<double> put_us;
    put_us.reserve(peers * (traffic_mult + 1));
    stopwatch grow;
    for (std::uint32_t d = 1; d <= peers; ++d)
    {
        auto const t0 = std::chrono::steady_clock::now();
        put_one(d);
        auto const t1 = std::chrono::steady_clock::now();
        put_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
    }

    // Phase 2 — skewed steady-state traffic: the hot head stays
    // resident, the tail idles toward the sweeper.
    zipf_sampler zipf(peers, zipf_s);
    std::uint64_t rng = 0x5eed + peers;
    std::uint64_t const extra =
        static_cast<std::uint64_t>(peers) * traffic_mult;
    for (std::uint64_t i = 0; i != extra; ++i)
    {
        std::uint32_t const dst = zipf(rng);
        auto const t0 = std::chrono::steady_clock::now();
        put_one(dst);
        auto const t1 = std::chrono::steady_clock::now();
        put_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if ((i & 0xfff) == 0)    // let the pipeline breathe
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }

    std::uint64_t const offered = peers + extra;
    stopwatch confirm_deadline;
    while (ph.counters().parcels_confirmed.load() < offered &&
        confirm_deadline.elapsed_ms() < 120000.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    double const wall_s = grow.elapsed_ms() / 1000.0;
    std::uint64_t const confirmed = ph.counters().parcels_confirmed.load();
    std::uint64_t const rss_loaded = rss_bytes();

    // Phase 3 — idle-out: stop offering and watch the sweeper demote the
    // whole population.
    stopwatch evict_clock;
    auto last = ph.peer_stats();
    while (last.active != 0 && evict_clock.elapsed_ms() < 60000.0)
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        last = ph.peer_stats();
    }
    double const evict_s = evict_clock.elapsed_ms() / 1000.0;
    std::uint64_t const rss_idle = rss_bytes();

    double const p50 = percentile(put_us, 0.50);
    double const p99 = percentile(put_us, 0.99);
    double const pmax = *std::max_element(put_us.begin(), put_us.end());
    double const confirm_pps =
        wall_s > 0.0 ? static_cast<double>(confirmed) / wall_s : 0.0;
    double const rss_per_peer = peers != 0 ?
        static_cast<double>(rss_loaded - rss_start) / peers :
        0.0;
    double const rss_per_idle_peer = peers != 0 ?
        static_cast<double>(rss_idle > rss_start ? rss_idle - rss_start : 0) /
            peers :
        0.0;
    double const evict_per_s = evict_s > 0.0 ?
        static_cast<double>(last.evictions) / evict_s :
        0.0;

    std::printf("peers %7u | put us p50 %6.2f p99 %7.2f max %8.1f | "
                "confirmed %" PRIu64 "/%" PRIu64 " (%.0f/s) | "
                "rss/peer %.0f B loaded, %.0f B idle | "
                "evicted %" PRIu64 " in %.2f s (%.0f/s) | "
                "shard max %zu\n",
        peers, p50, p99, pmax, confirmed, offered, confirm_pps,
        rss_per_peer, rss_per_idle_peer, last.evictions, evict_s,
        evict_per_s, last.shard_max_occupancy);
    std::printf("BENCH {\"bench\":\"churn\",\"peers\":%u,"
                "\"p50_put_us\":%.3f,\"p99_put_us\":%.3f,"
                "\"max_put_us\":%.1f,\"confirm_pps\":%.0f,"
                "\"rss_per_peer_b\":%.0f,\"rss_per_idle_peer_b\":%.0f,"
                "\"evictions\":%" PRIu64 ",\"evict_per_s\":%.0f,"
                "\"active_end\":%zu}\n",
        peers, p50, p99, pmax, confirm_pps, rss_per_peer,
        rss_per_idle_peer, last.evictions, evict_per_s, last.active);
    csv.row("%u,%.3f,%.3f,%.1f,%.0f,%.0f,%.0f,%" PRIu64 ",%.0f", peers, p50,
        p99, pmax, confirm_pps, rss_per_peer, rss_per_idle_peer,
        last.evictions, evict_per_s);

    ph.stop();
    sched.stop();
}

}    // namespace

int main(int argc, char** argv)
{
    auto const cfg = coal::bench::parse_cli(argc, argv);
    coal::bench::print_header("Peer-scale churn: sharded store + idle "
                              "eviction under Zipf traffic",
        "scaling evidence for the sharded peer store (DESIGN.md §13)");

    std::vector<std::uint32_t> peer_counts;
    {
        std::string const list =
            cfg.get_string("peers", "1000,10000,100000");
        for (std::size_t pos = 0; pos < list.size();)
        {
            auto const comma = list.find(',', pos);
            auto const token = list.substr(pos,
                comma == std::string::npos ? std::string::npos : comma - pos);
            if (!token.empty())
                peer_counts.push_back(static_cast<std::uint32_t>(
                    std::strtoull(token.c_str(), nullptr, 10)));
            pos = comma == std::string::npos ? list.size() : comma + 1;
        }
    }
    auto const traffic = static_cast<std::uint32_t>(cfg.get_int("traffic", 4));
    double const zipf_s = cfg.get_double("zipf_s", 1.0);
    auto const evict_idle_ms = cfg.get_int("evict_idle_ms", 50);

    coal::bench::csv_sink csv(cfg,
        "peers,p50_put_us,p99_put_us,max_put_us,confirm_pps,"
        "rss_per_peer_b,rss_per_idle_peer_b,evictions,evict_per_s");

    for (auto const peers : peer_counts)
        run_row(static_cast<std::uint32_t>(peers), traffic, zipf_s,
            evict_idle_ms, csv);
    return 0;
}
