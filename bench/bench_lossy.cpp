/// \file bench_lossy.cpp
/// Robustness cost curve: toy-app phase completion time under injected
/// message loss, with and without coalescing.  Shows (a) what the
/// ack/retransmit layer costs when the network is clean, and (b) how
/// gracefully throughput degrades as the drop rate rises — coalescing
/// keeps amortizing per-message cost while retransmission fills the
/// holes.
///
///     ./bench_lossy [parcels=4000] [phases=3] [repeats=2] [seed=...]
///
/// Each row is also emitted as a machine-readable line:
///     BENCH {"bench":"lossy","drop":...,"coalescing":...,...}

#include "bench_common.hpp"

#include <coal/serialization/buffer_pool.hpp>

#include <cinttypes>

namespace {

struct lossy_measurement
{
    double mean_phase_s = 0.0;
    double mean_overhead = 0.0;
    std::uint64_t retransmits = 0;
    std::uint64_t drops_injected = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t breaker_trips = 0;
    double pool_hit_rate = 0.0;
    double copied_per_message = 0.0;
};

lossy_measurement measure(coal::apps::toy_params params, double drop,
    std::uint64_t seed, unsigned repeats)
{
    lossy_measurement out;
    coal::running_stats phase_times, overheads;

    params.phases += 1;    // warm-up phase, dropped below

    for (unsigned r = 0; r != repeats; ++r)
    {
        coal::runtime_config cfg;
        cfg.num_localities = 2;
        cfg.apply_coalescing_defaults = false;
        cfg.faults.seed = seed + r;
        cfg.faults.drop_probability = drop;
        // Bulk traffic: let the ack window breathe instead of tripping
        // the breaker on every burst (degradation is bench_lossy's
        // subject only insofar as it shows up in the phase times).  The
        // protocol has no flow control, so an aggressive RTO against a
        // burst of thousands of outstanding frames would retransmit
        // spuriously; a conservative floor keeps "retransmits" meaning
        // "actual loss recovery".
        cfg.reliability.min_rto_us = 100000;
        cfg.reliability.breaker_trip_backlog = 1u << 20;
        cfg.reliability.breaker_trip_attempts = 1000;
        coal::runtime rt(cfg);

        auto const result = coal::apps::run_toy_app(rt, params);
        for (std::size_t i = 1; i < result.phases.size(); ++i)
        {
            phase_times.add(result.phases[i].metrics.duration_s);
            overheads.add(result.phases[i].metrics.network_overhead);
        }

        rt.quiesce();
        for (std::uint32_t l = 0; l != 2; ++l)
        {
            auto const& c = rt.get_locality(l).parcels().counters();
            out.retransmits += c.retransmits.load();
            out.breaker_trips += c.circuit_breaker_trips.load();
        }
        auto const net = rt.network().stats();
        out.drops_injected += net.drops_injected;
        out.messages_sent += net.messages_sent;
        rt.stop();
    }

    // Pool behaviour over the whole sweep cell (the pool is
    // process-global, so per-repeat deltas would race with nothing —
    // every repeat in this cell contributes).
    auto const pool = coal::serialization::buffer_pool::global().stats();
    out.pool_hit_rate = pool.hits + pool.misses > 0
        ? static_cast<double>(pool.hits) /
            static_cast<double>(pool.hits + pool.misses)
        : 0.0;
    out.copied_per_message = out.messages_sent > 0
        ? static_cast<double>(pool.bytes_copied + pool.bytes_flattened) /
            static_cast<double>(out.messages_sent)
        : 0.0;

    out.mean_phase_s = phase_times.mean();
    out.mean_overhead = overheads.mean();
    return out;
}

}    // namespace

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cfg.get_int("parcels", 4000));
    auto const phases = static_cast<unsigned>(cfg.get_int("phases", 3));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 2));
    auto const seed =
        static_cast<std::uint64_t>(cfg.get_int("seed", 0x10551));

    coal::bench::print_header(
        "Lossy network — toy app phase time vs drop rate",
        "robustness extension; reliable delivery over a faulty transport");

    std::printf("%-8s %-12s %-16s %-12s %-12s %-10s\n", "drop", "coalescing",
        "phase time [ms]", "retransmits", "drops", "msgs");
    coal::bench::csv_sink csv(
        cfg, "drop,coalescing,time_ms,retransmits,drops,messages");

    for (double const drop : {0.0, 0.001, 0.01})
    {
        for (bool const coalescing : {false, true})
        {
            coal::apps::toy_params params;
            params.parcels_per_phase = parcels;
            params.phases = phases;
            params.enable_coalescing = coalescing;
            params.coalescing = {64, 4000};

            auto const m = measure(params, drop, seed, repeats);
            std::printf("%-8.4f %-12s %-16.2f %-12" PRIu64 " %-12" PRIu64
                        " %-10" PRIu64 "\n",
                drop, coalescing ? "on" : "off", m.mean_phase_s * 1e3,
                m.retransmits, m.drops_injected, m.messages_sent);
            std::printf("BENCH {\"bench\":\"lossy\",\"drop\":%.4f,"
                        "\"coalescing\":%d,\"phase_ms\":%.3f,"
                        "\"overhead\":%.4f,\"retransmits\":%" PRIu64
                        ",\"drops_injected\":%" PRIu64 ",\"messages\":%" PRIu64
                        ",\"breaker_trips\":%" PRIu64
                        ",\"pool_hit_rate\":%.4f"
                        ",\"copied_per_message\":%.1f}\n",
                drop, coalescing ? 1 : 0, m.mean_phase_s * 1e3,
                m.mean_overhead, m.retransmits, m.drops_injected,
                m.messages_sent, m.breaker_trips, m.pool_hit_rate,
                m.copied_per_message);
            csv.row("%.4f,%d,%.3f,%" PRIu64 ",%" PRIu64 ",%" PRIu64, drop,
                coalescing ? 1 : 0, m.mean_phase_s * 1e3, m.retransmits,
                m.drops_injected, m.messages_sent);
        }
    }

    std::printf("\nexpectation: coalescing stays faster at every drop rate; "
                "retransmits scale with the drop rate and vanish at 0.\n");
    return 0;
}
