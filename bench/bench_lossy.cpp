/// \file bench_lossy.cpp
/// Robustness cost curve: toy-app phase completion time under injected
/// message loss, with and without coalescing.  Shows (a) what the
/// ack/retransmit layer costs when the network is clean, and (b) how
/// gracefully throughput degrades as the drop rate rises — coalescing
/// keeps amortizing per-message cost while retransmission fills the
/// holes.
///
///     ./bench_lossy [parcels=4000] [phases=3] [repeats=2] [seed=...]
///
/// Each row is also emitted as a machine-readable line:
///     BENCH {"bench":"lossy","drop":...,"coalescing":...,...}
///
/// A second sweep drives the flow-control layer into overload: producers
/// burst best-effort parcels at a link that is dark for the first 100 ms,
/// against fixed pool watermarks, and the rows report goodput and shed
/// rate versus offered load:
///     BENCH {"bench":"lossy-overload","offered":...,"goodput_pps":...}

#include "bench_common.hpp"

#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/threading/scheduler.hpp>

#include <atomic>
#include <cinttypes>
#include <thread>

namespace {

std::atomic<std::uint64_t> g_overload_delivered{0};

std::size_t overload_sink(std::string blob)
{
    g_overload_delivered.fetch_add(1);
    return blob.size();
}

}    // namespace

COAL_PLAIN_ACTION(overload_sink, overload_sink_action);

namespace {

struct lossy_measurement
{
    double mean_phase_s = 0.0;
    double mean_overhead = 0.0;
    std::uint64_t retransmits = 0;
    std::uint64_t drops_injected = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t breaker_trips = 0;
    double pool_hit_rate = 0.0;
    double copied_per_message = 0.0;
};

lossy_measurement measure(coal::apps::toy_params params, double drop,
    std::uint64_t seed, unsigned repeats, std::string const& transport)
{
    lossy_measurement out;
    coal::running_stats phase_times, overheads;

    params.phases += 1;    // warm-up phase, dropped below

    for (unsigned r = 0; r != repeats; ++r)
    {
        coal::runtime_config cfg;
        cfg.num_localities = 2;
        cfg.apply_coalescing_defaults = false;
        cfg.transport = transport;    // "sim" or real wire: tcp / uds
        cfg.faults.seed = seed + r;
        cfg.faults.drop_probability = drop;
        // Bulk traffic: let the ack window breathe instead of tripping
        // the breaker on every burst (degradation is bench_lossy's
        // subject only insofar as it shows up in the phase times).  The
        // protocol has no flow control, so an aggressive RTO against a
        // burst of thousands of outstanding frames would retransmit
        // spuriously; a conservative floor keeps "retransmits" meaning
        // "actual loss recovery".
        cfg.reliability.min_rto_us = 100000;
        cfg.reliability.breaker_trip_backlog = 1u << 20;
        cfg.reliability.breaker_trip_attempts = 1000;
        coal::runtime rt(cfg);

        auto const result = coal::apps::run_toy_app(rt, params);
        for (std::size_t i = 1; i < result.phases.size(); ++i)
        {
            phase_times.add(result.phases[i].metrics.duration_s);
            overheads.add(result.phases[i].metrics.network_overhead);
        }

        rt.quiesce();
        for (std::uint32_t l = 0; l != 2; ++l)
        {
            auto const& c = rt.get_locality(l).parcels().counters();
            out.retransmits += c.retransmits.load();
            out.breaker_trips += c.circuit_breaker_trips.load();
        }
        auto const net = rt.network().stats();
        out.drops_injected += net.drops_injected;
        out.messages_sent += net.messages_sent;
        rt.stop();
    }

    // Pool behaviour over the whole sweep cell (the pool is
    // process-global, so per-repeat deltas would race with nothing —
    // every repeat in this cell contributes).
    auto const pool = coal::serialization::buffer_pool::global().stats();
    out.pool_hit_rate = pool.hits + pool.misses > 0
        ? static_cast<double>(pool.hits) /
            static_cast<double>(pool.hits + pool.misses)
        : 0.0;
    out.copied_per_message = out.messages_sent > 0
        ? static_cast<double>(pool.bytes_copied + pool.bytes_flattened) /
            static_cast<double>(out.messages_sent)
        : 0.0;

    out.mean_phase_s = phase_times.mean();
    out.mean_overhead = overheads.mean();
    return out;
}

// ---------------------------------------------------------------------
// Overload sweep: goodput + shed rate vs offered load under flow control.

struct overload_measurement
{
    std::uint64_t delivered = 0;
    std::uint64_t shed = 0;
    std::uint64_t link_down = 0;
    std::uint64_t peer_failed = 0;
    std::uint64_t deferrals = 0;
    double elapsed_s = 0.0;
};

/// Burst `offered` best-effort parcels (3000 B payload each) at a link
/// that is blacked out for the first 100 ms, with pool watermarks and
/// per-link caps fixed — what the flow layer refuses is the shed rate,
/// what it delivers per second after the link heals is the goodput.
overload_measurement measure_overload(std::uint64_t offered)
{
    namespace ser = coal::serialization;
    using namespace coal::parcel;

    overload_measurement out;

    ser::buffer_pool::global().set_watermarks(1u << 20, 3u << 20, 2u << 20);

    coal::net::fault_plan plan;
    coal::net::blackout_window w;
    w.src = 0;
    w.dst = 1;
    w.end_us = 100'000;
    plan.blackouts.push_back(w);

    coal::net::loopback_transport inner(2);
    coal::net::faulty_transport faulty(inner, plan);

    coal::threading::scheduler_config scfg;
    scfg.num_workers = 2;
    scfg.idle_sleep_us = 50;
    coal::threading::scheduler sched0(scfg), sched1(scfg);

    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;

    flow_params flow;
    flow.enabled = true;
    flow.initial_window_bytes = 64 * 1024;
    flow.window_bytes = 128 * 1024;
    flow.min_window_bytes = 16 * 1024;
    flow.link_soft_bytes = 512 * 1024;
    flow.link_inflight_cap_bytes = 1536 * 1024;
    flow.starvation_trip_us = 50000;
    flow.pool_soft_bytes = 1u << 20;
    flow.pool_critical_bytes = 3u << 20;
    flow.pool_fallback_cap_bytes = 2u << 20;

    parcelhandler ph0(0, faulty, sched0, rel, flow);
    parcelhandler ph1(1, faulty, sched1, rel, flow);

    // The unified delivery-failure taxonomy: count each cause separately
    // so the report shows the split, not one lumped "failed" number.
    std::atomic<std::uint64_t> shed{0}, link_down{0}, peer_failed{0};
    ph0.set_delivery_error_handler([&](delivery_error err, parcel&&) {
        switch (err)
        {
        case delivery_error::shed_overload:
            shed.fetch_add(1);
            break;
        case delivery_error::link_down:
            link_down.fetch_add(1);
            break;
        case delivery_error::peer_failed:
            peer_failed.fetch_add(1);
            break;
        }
    });

    g_overload_delivered = 0;
    std::string const blob(3000, 'x');

    // Pace the offered load over a fixed 300 ms window so "offered load"
    // is a rate, not one burst: the first third hits the dark link, the
    // rest races the backlog drain.
    std::uint64_t const batch = 50;
    std::int64_t const batch_gap_us = static_cast<std::int64_t>(
        300'000 / (offered / batch > 0 ? offered / batch : 1));
    coal::stopwatch clock;
    for (std::uint64_t i = 0; i != offered; ++i)
    {
        parcel p;
        p.dest = 1;
        p.action = overload_sink_action::id();
        p.arguments = overload_sink_action::make_arguments(blob);
        ph0.put_parcel(std::move(p));
        if ((i + 1) % batch == 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(batch_gap_us));
    }

    auto const quiet = [&] {
        return ph0.pending_sends() == 0 && ph1.pending_sends() == 0 &&
            ph0.pending_receives() == 0 && ph1.pending_receives() == 0 &&
            ph0.pending_reliability() == 0 && ph1.pending_reliability() == 0 &&
            sched0.pending_tasks() == 0 && sched1.pending_tasks() == 0;
    };
    while (clock.elapsed_ms() < 60000.0)
    {
        if (quiet() && faulty.in_flight() == 0)
            break;
        if (quiet() && faulty.in_flight() != 0)
            faulty.drain();
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    out.elapsed_s = clock.elapsed_ms() / 1e3;

    out.delivered = g_overload_delivered.load();
    out.shed = shed.load();
    out.link_down = link_down.load();
    out.peer_failed = peer_failed.load();
    out.deferrals = ph0.counters().sends_deferred.load();

    ph0.stop();
    ph1.stop();
    sched0.stop();
    sched1.stop();
    ser::buffer_pool::global().set_watermarks(0, 0, 0);
    return out;
}

}    // namespace

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cfg.get_int("parcels", 4000));
    auto const phases = static_cast<unsigned>(cfg.get_int("phases", 3));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 2));
    auto const seed =
        static_cast<std::uint64_t>(cfg.get_int("seed", 0x10551));
    // transport=sim|tcp|uds: the same sweep over the simulated wire or the
    // real socket parcelport (faulty_transport composes over either).
    std::string const transport = cfg.get("transport").value_or("sim");

    coal::bench::print_header(
        "Lossy network — toy app phase time vs drop rate",
        "robustness extension; reliable delivery over a faulty transport");
    std::printf("transport: %s\n\n", transport.c_str());

    std::printf("%-8s %-12s %-16s %-12s %-12s %-10s\n", "drop", "coalescing",
        "phase time [ms]", "retransmits", "drops", "msgs");
    coal::bench::csv_sink csv(
        cfg, "drop,coalescing,time_ms,retransmits,drops,messages");

    for (double const drop : {0.0, 0.001, 0.01})
    {
        for (bool const coalescing : {false, true})
        {
            coal::apps::toy_params params;
            params.parcels_per_phase = parcels;
            params.phases = phases;
            params.enable_coalescing = coalescing;
            params.coalescing = {64, 4000};

            auto const m = measure(params, drop, seed, repeats, transport);
            std::printf("%-8.4f %-12s %-16.2f %-12" PRIu64 " %-12" PRIu64
                        " %-10" PRIu64 "\n",
                drop, coalescing ? "on" : "off", m.mean_phase_s * 1e3,
                m.retransmits, m.drops_injected, m.messages_sent);
            std::printf("BENCH {\"bench\":\"lossy\","
                        "\"transport\":\"%s\",\"drop\":%.4f,"
                        "\"coalescing\":%d,\"phase_ms\":%.3f,"
                        "\"overhead\":%.4f,\"retransmits\":%" PRIu64
                        ",\"drops_injected\":%" PRIu64 ",\"messages\":%" PRIu64
                        ",\"breaker_trips\":%" PRIu64
                        ",\"pool_hit_rate\":%.4f"
                        ",\"copied_per_message\":%.1f}\n",
                transport.c_str(), drop, coalescing ? 1 : 0,
                m.mean_phase_s * 1e3,
                m.mean_overhead, m.retransmits, m.drops_injected,
                m.messages_sent, m.breaker_trips, m.pool_hit_rate,
                m.copied_per_message);
            csv.row("%.4f,%d,%.3f,%" PRIu64 ",%" PRIu64 ",%" PRIu64, drop,
                coalescing ? 1 : 0, m.mean_phase_s * 1e3, m.retransmits,
                m.drops_injected, m.messages_sent);
        }
    }

    std::printf("\nexpectation: coalescing stays faster at every drop rate; "
                "retransmits scale with the drop rate and vanish at 0.\n");

    // Overload sweep: fixed watermarks, rising offered load.  Goodput is
    // what survives end to end; everything refused was refused loudly
    // (admission shed or link_down), never by silent buffer growth.
    std::printf("\noverload (flow control: 3 MiB critical watermark, "
                "1.5 MiB link cap, 100 ms stall):\n");
    std::printf("%-10s %-11s %-11s %-11s %-11s %-11s %-11s\n", "offered",
        "delivered", "shed-rate", "link-down", "peer-fail", "deferrals",
        "goodput/s");
    for (std::uint64_t const offered : {1000u, 2000u, 4000u, 8000u})
    {
        auto const m = measure_overload(offered);
        double const shed_rate =
            static_cast<double>(m.shed) / static_cast<double>(offered);
        double const goodput =
            m.elapsed_s > 0.0 ? static_cast<double>(m.delivered) / m.elapsed_s
                              : 0.0;
        std::printf("%-10" PRIu64 " %-11" PRIu64 " %-11.3f %-11" PRIu64
                    " %-11" PRIu64 " %-11" PRIu64 " %-11.0f\n",
            offered, m.delivered, shed_rate, m.link_down, m.peer_failed,
            m.deferrals, goodput);
        std::printf("BENCH {\"bench\":\"lossy-overload\",\"offered\":%" PRIu64
                    ",\"delivered\":%" PRIu64 ",\"shed_rate\":%.4f"
                    ",\"link_down\":%" PRIu64 ",\"peer_failed\":%" PRIu64
                    ",\"deferrals\":%" PRIu64
                    ",\"goodput_pps\":%.0f,\"elapsed_s\":%.3f}\n",
            offered, m.delivered, shed_rate, m.link_down, m.peer_failed,
            m.deferrals, goodput, m.elapsed_s);
    }
    std::printf("\nexpectation: refusals (shed + link_down + peer_failed) "
                "absorb the excess as offered load rises; delivered + shed + "
                "link_down + peer_failed == offered at every row, never "
                "silent loss (no peer dies here, so peer_failed stays 0).\n");
    return 0;
}
