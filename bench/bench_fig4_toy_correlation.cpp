/// \file bench_fig4_toy_correlation.cpp
/// Reproduces Fig. 4: scatter of average network overhead per phase vs
/// average execution time per phase for the toy application, one point
/// per coalescing-parameter set.  Paper: Pearson r = 0.97 — the
/// intrinsic overhead metric (Eq. 4) predicts runtime.
///
///     ./bench_fig4_toy_correlation [parcels=6000] [repeats=2]

#include "bench_common.hpp"

#include <coal/common/stats.hpp>

int main(int argc, char** argv)
{
    auto cfg = coal::bench::parse_cli(argc, argv);
    auto const parcels =
        static_cast<std::size_t>(cfg.get_int("parcels", 6000));
    auto const repeats = static_cast<unsigned>(cfg.get_int("repeats", 3));

    coal::bench::print_header(
        "Fig. 4 — toy app: average network overhead vs phase time",
        "one dot per coalescing parameter set; paper Pearson r = 0.97");

    std::printf("%-10s %-14s %-14s %-16s\n", "nparcels", "interval [us]",
        "overhead", "phase time [ms]");
    coal::bench::csv_sink csv(cfg, "nparcels,interval_us,overhead,time_ms");

    std::vector<double> overheads, times;
    for (std::int64_t interval : {2000, 4000})
    {
        for (std::size_t n : {1, 2, 4, 8, 16, 32, 64, 128})
        {
            coal::apps::toy_params params;
            params.parcels_per_phase = parcels;
            params.phases = 3;
            params.coalescing = {n, interval};

            auto const m = coal::bench::measure_toy(params, repeats);
            overheads.push_back(m.mean_overhead);
            times.push_back(m.mean_phase_s * 1e3);
            std::printf("%-10zu %-14lld %-14.4f %-16.2f\n", n,
                static_cast<long long>(interval), m.mean_overhead,
                m.mean_phase_s * 1e3);
            csv.row("%zu,%lld,%.6f,%.4f", n,
                static_cast<long long>(interval), m.mean_overhead,
                m.mean_phase_s * 1e3);
        }
    }

    double const r = coal::pearson_correlation(overheads, times);
    std::printf("\nPearson correlation (overhead vs time): %.3f   "
                "(paper: 0.97)\n",
        r);
    return 0;
}
